package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/wire"
)

// Per-opcode metric slots: slot 0 collects anything outside the known
// opcode range (unknown ops, undecodable frames), slots 1..14 mirror the
// wire opcodes. Arrays indexed by slot keep the hot-path record a bounds-
// checked array access, no map lookups.
const numOps = 15

func opSlot(op wire.Op) int {
	if op >= wire.OpGet && op <= wire.OpTxn {
		return int(op)
	}
	return 0
}

var opNames = [numOps]string{
	"other", "Get", "Put", "Delete", "PutBatch",
	"Scan", "Stats", "GetV", "PutV", "ScanV",
	"GetK", "PutK", "DeleteK", "ScanK", "Txn",
}

// Op classes summarize latency for the wire Stats frame: read = Get/GetV/
// GetK/Stats, write = Put/PutV/PutK/Delete/DeleteK/PutBatch, scan =
// Scan/ScanV/ScanK. Slot 0 (unknown) counts as read — it never carries
// store work.
const (
	classRead = iota
	classWrite
	classScan
	numClasses
)

var classNames = [numClasses]string{"read", "write", "scan"}

var opClasses = [numOps]int{
	classRead,  // other
	classRead,  // Get
	classWrite, // Put
	classWrite, // Delete
	classWrite, // PutBatch
	classScan,  // Scan
	classRead,  // Stats
	classRead,  // GetV
	classWrite, // PutV
	classScan,  // ScanV
	classRead,  // GetK
	classWrite, // PutK
	classWrite, // DeleteK
	classScan,  // ScanK
	classWrite, // Txn
}

// serverMetrics is the server's always-on instrumentation: per-opcode
// request/error counters (striped by worker so the hot path never contends
// a shared line; always exact), per-opcode stage histograms splitting each
// request's life into queue wait (ingest to execution start), execution,
// and flush wait (response ready to write syscall), per-class
// whole-request histograms backing the wire Stats latency summary, and
// pipeline shape distributions (ingest batch size, flush size in bytes
// and responses). The latency histograms observe a 1-in-latencySampleMask+1
// sample of requests — see executeOne — unless SlowOpThreshold is set.
type serverMetrics struct {
	reqs [numOps]*metrics.Striped
	errs [numOps]*metrics.Striped

	queue [numOps]*metrics.Histogram
	exec  [numOps]*metrics.Histogram
	flush [numOps]*metrics.Histogram

	class [numClasses]*metrics.Histogram

	readBatch  *metrics.Histogram
	flushBytes *metrics.Histogram
	flushPend  *metrics.Histogram

	// Slow-op log state: lastSlowLog is the mnow() time of the last emitted
	// line (CAS-guarded, at most one line per slowLogEvery), slowSuppressed
	// counts rate-limited drops since then, slowOps every request at or
	// over the threshold.
	slowOps        metrics.Counter
	slowSuppressed atomic.Uint64
	lastSlowLog    atomic.Int64
}

// slowLogEvery bounds slow-op log volume: at most one line per interval,
// with a suppressed count carried on the next line.
const slowLogEvery = int64(100 * time.Millisecond)

func newServerMetrics(workers int) *serverMetrics {
	m := &serverMetrics{}
	for i := 0; i < numOps; i++ {
		m.reqs[i] = metrics.NewStriped(workers)
		m.errs[i] = metrics.NewStriped(workers)
		m.queue[i] = metrics.NewHistogram()
		m.exec[i] = metrics.NewHistogram()
		m.flush[i] = metrics.NewHistogram()
	}
	for i := 0; i < numClasses; i++ {
		m.class[i] = metrics.NewHistogram()
	}
	m.readBatch = metrics.NewHistogram()
	m.flushBytes = metrics.NewHistogram()
	m.flushPend = metrics.NewHistogram()
	// Seed the rate limiter one interval in the past so the first slow op
	// logs even inside the server's first interval.
	m.lastSlowLog.Store(-slowLogEvery)
	return m
}

// classSummary fills the six wire Stats latency-summary words (read p50,
// read p99, write p50, write p99, scan p50, scan p99) in nanoseconds.
func (m *serverMetrics) classSummary() (out [2 * numClasses]uint64) {
	for c := 0; c < numClasses; c++ {
		s := m.class[c].Snapshot()
		out[2*c] = uint64(s.Quantile(0.50))
		out[2*c+1] = uint64(s.Quantile(0.99))
	}
	return out
}

// registerMetrics exposes the server's counters and histograms on reg.
// Counters are read-function-backed, so the writers stay plain atomics.
func (s *Server) registerMetrics(reg *metrics.Registry) {
	m := s.met
	for i := 0; i < numOps; i++ {
		op := `op="` + opNames[i] + `"`
		reg.Counter("pmkv_server_requests_total", op,
			"requests served, by opcode", m.reqs[i].Load)
		reg.Counter("pmkv_server_request_errors_total", op,
			"requests answered with StatusErr or StatusClosed, by opcode", m.errs[i].Load)
		reg.Histogram("pmkv_server_request_stage_seconds", op+`,stage="queue"`,
			"per-request pipeline stage latency", 1e-9, m.queue[i])
		reg.Histogram("pmkv_server_request_stage_seconds", op+`,stage="execute"`,
			"per-request pipeline stage latency", 1e-9, m.exec[i])
		reg.Histogram("pmkv_server_request_stage_seconds", op+`,stage="flush"`,
			"per-request pipeline stage latency", 1e-9, m.flush[i])
	}
	for c := 0; c < numClasses; c++ {
		reg.Histogram("pmkv_server_request_seconds", `class="`+classNames[c]+`"`,
			"whole-request latency (queue wait + execution) by op class", 1e-9, m.class[c])
	}
	reg.Histogram("pmkv_server_read_batch_requests", "",
		"requests decoded per reader ingest batch", 1, m.readBatch)
	reg.Histogram("pmkv_server_flush_bytes", "",
		"encoded bytes per response write syscall", 1, m.flushBytes)
	reg.Histogram("pmkv_server_flush_responses", "",
		"responses coalesced per write syscall", 1, m.flushPend)

	reg.Counter("pmkv_server_bytes_total", `direction="in"`,
		"wire bytes moved, including frame headers", s.bytesIn.Load)
	reg.Counter("pmkv_server_bytes_total", `direction="out"`,
		"wire bytes moved, including frame headers", s.bytesOut.Load)
	reg.Gauge("pmkv_server_connections_live", "",
		"currently open connections", func() float64 {
			live := s.connsLive.Load()
			if live < 0 {
				live = 0
			}
			return float64(live)
		})
	reg.Counter("pmkv_server_connections_total", "",
		"connections accepted since start", s.connsTotal.Load)
	reg.Counter("pmkv_server_read_batches_total", "",
		"ingest batches dispatched", s.readBatches.Load)
	reg.Counter("pmkv_server_inline_requests_total", "",
		"requests executed inline on their reader", s.inlineOps.Load)
	reg.Counter("pmkv_server_steered_requests_total", "",
		"requests executed on a steered worker", s.steeredOps.Load)
	reg.Counter("pmkv_server_flushes_total", "",
		"response write syscalls", s.flushes.Load)
	reg.Counter("pmkv_server_shed_requests_total", "",
		"requests answered StatusBusy at the MaxServerInflight admission cap", s.shed.Load)
	reg.Counter("pmkv_server_idle_closes_total", "",
		"connections closed by Options.IdleTimeout", s.idleCloses.Load)
	reg.Counter("pmkv_server_connection_resets_total", "",
		"connections that died mid-stream (reset, torn or corrupt frame, protocol error)", s.resets.Load)
	reg.Counter("pmkv_server_slow_requests_total", "",
		"requests at or over Options.SlowOpThreshold (queue + execute)", m.slowOps.Load)
}

// OpLatencies reports the server-side whole-request (queue wait +
// execution) p50 and p99 per op class, in read/write/scan order — the same
// numbers the wire Stats frame carries, for in-process consumers like the
// periodic stats log.
func (s *Server) OpLatencies() (p50, p99 [3]time.Duration) {
	sum := s.met.classSummary()
	for c := 0; c < numClasses; c++ {
		p50[c] = time.Duration(sum[2*c])
		p99[c] = time.Duration(sum[2*c+1])
	}
	return p50, p99
}

// mnow is the server's monotonic clock: nanoseconds since the server was
// constructed. time.Since on a monotonic time.Time is allocation-free, and
// an int64 travels through svResp without boxing.
func (s *Server) mnow() int64 {
	return int64(time.Since(s.epoch))
}

// noteSlow logs one rate-limited line for a request that met
// Options.SlowOpThreshold, with its op, key, and queue/execute breakdown.
func (s *Server) noteSlow(req *wire.Request, slot int, queueNS, execNS, now int64) {
	m := s.met
	m.slowOps.Inc()
	if s.opts.Logf == nil {
		return
	}
	last := m.lastSlowLog.Load()
	if now-last < slowLogEvery || !m.lastSlowLog.CompareAndSwap(last, now) {
		m.slowSuppressed.Add(1)
		return
	}
	suppressed := m.slowSuppressed.Swap(0)
	extra := ""
	if suppressed > 0 {
		extra = fmt.Sprintf(" (+%d suppressed)", suppressed)
	}
	if len(req.KKey) > 0 {
		s.logf("server: slow op %s key=%q queue=%v execute=%v%s",
			opNames[slot], req.KKey, time.Duration(queueNS), time.Duration(execNS), extra)
		return
	}
	s.logf("server: slow op %s key=%d queue=%v execute=%v%s",
		opNames[slot], req.Key, time.Duration(queueNS), time.Duration(execNS), extra)
}
