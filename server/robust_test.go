package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/client"
	"repro/store"
)

// TestAdmissionShedsBusy pins the global admission cap's whole contract at
// once: under a pipelined burst far wider than MaxServerInflight some
// requests are shed with StatusBusy (surfacing as client.ErrBusy, which is
// Retryable), every call still completes, and — the critical half — a shed
// write was NEVER executed: its key must be absent afterwards.
func TestAdmissionShedsBusy(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{
		Workers:           1,
		InlineBatch:       -1, // force steering so admitted requests queue
		MaxServerInflight: 4,
	})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 4000
	calls := make([]*client.Call, n)
	for i := 0; i < n; i++ {
		calls[i] = c.PutAsync(uint64(i+1), uint64(i+1)*3)
	}
	shed, applied := 0, 0
	for i, call := range calls {
		switch err := call.Wait(); {
		case err == nil:
			applied++
		case errors.Is(err, client.ErrBusy):
			if !client.Retryable(err) {
				t.Fatalf("ErrBusy not Retryable: %v", err)
			}
			shed++
		default:
			t.Fatalf("put %d: unexpected error class: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed despite MaxServerInflight=4 under a 4000-deep pipeline")
	}
	if applied == 0 {
		t.Fatal("every request was shed; admission admitted nothing")
	}
	t.Logf("%d applied, %d shed", applied, shed)

	if st := ts.srv.Stats(); st.Shed != uint64(shed) {
		t.Fatalf("Stats.Shed = %d, want %d", st.Shed, shed)
	}
	// Shed means never executed: acked keys present, shed keys absent.
	for i, call := range calls {
		key := uint64(i + 1)
		v, ok, err := c.Get(key)
		if err != nil {
			if errors.Is(err, client.ErrBusy) {
				// The verification Gets run under the same tiny cap.
				v, ok, err = c.Get(key)
			}
			if err != nil {
				t.Fatalf("verify Get(%d): %v", key, err)
			}
		}
		if call.Err == nil && (!ok || v != key*3) {
			t.Fatalf("acked put %d missing after burst (ok=%v v=%d)", key, ok, v)
		}
		if call.Err != nil && ok {
			t.Fatalf("shed put %d was executed anyway", key)
		}
	}

	// The shed counters travel the wire too.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shed == 0 {
		t.Fatal("wire Stats.Shed = 0 after observed shedding")
	}
}

// TestIdleTimeout: a connection with no traffic for Options.IdleTimeout is
// cut and counted, while a connection that keeps talking — even slowly —
// survives, and graceful shutdown still wins over an armed idle deadline.
func TestIdleTimeout(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{IdleTimeout: 400 * time.Millisecond})

	idle, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	busy, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	if err := idle.Put(1, 1); err != nil {
		t.Fatal(err)
	}

	// The busy conn pings well inside the timeout for 1.2s; the idle conn
	// says nothing. Only the idle one may die.
	for i := 0; i < 12; i++ {
		time.Sleep(100 * time.Millisecond)
		if err := busy.Put(2, uint64(i)); err != nil {
			t.Fatalf("active conn cut by idle timeout on ping %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for idle.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never cut")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := ts.srv.Stats(); st.IdleCloses == 0 {
		t.Fatalf("IdleCloses = 0 after an idle cut (stats %+v)", st)
	}
	stats, err := busy.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.IdleCloses == 0 {
		t.Fatal("wire Stats.IdleCloses = 0 after an idle cut")
	}

	// Graceful shutdown must win over armed idle deadlines (beginDrain's
	// immediate deadline cannot be overwritten by the idle re-arm).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown with idle deadlines armed: %v", err)
	}
}

// TestNoSpaceOverWire: a server on a nearly-full store answers varlen
// writes with StatusNoSpace (client.ErrNoSpace, not Retryable), while
// reads, deletes, and fixed-width puts on the same connection keep working
// — degradation, not death.
func TestNoSpaceOverWire(t *testing.T) {
	ts := startServer(t,
		store.Options{Shards: 1, ShardSize: 4 << 20, ValueLogExtent: 256 << 10},
		Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	val := make([]byte, 8<<10)
	for i := range val {
		val[i] = byte(i)
	}
	var full error
	var lastOK uint64
	for k := uint64(1); k <= 4096; k++ {
		if err := c.PutBytes(k, val); err != nil {
			full = err
			break
		}
		lastOK = k
	}
	if full == nil {
		t.Fatal("4096 8KiB values fit a 4MiB shard; space admission never refused")
	}
	if !errors.Is(full, client.ErrNoSpace) {
		t.Fatalf("write on full store failed with %v, want ErrNoSpace", full)
	}
	if client.Retryable(full) {
		t.Fatal("ErrNoSpace classified Retryable; blind retries cannot fix a full pool")
	}

	// Degraded, not dead: reads, deletes, and the connection all survive.
	got, ok, err := c.GetBytes(lastOK)
	if err != nil || !ok || len(got) != len(val) {
		t.Fatalf("GetBytes(%d) on full store = (%d bytes, %v, %v)", lastOK, len(got), ok, err)
	}
	if ok, err := c.Delete(lastOK); err != nil || !ok {
		t.Fatalf("Delete on full store = (%v, %v)", ok, err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats on full store: %v", err)
	}
}
