package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"repro/store"
	"repro/wire"
)

// reqQueue/respQueue bound the per-connection pipeline depth. Deep enough
// to keep workers busy between flushes, shallow enough that a slow client
// exerts backpressure on its own reads rather than ballooning memory.
const (
	reqQueue  = 256
	respQueue = 256
	ioBufSize = 64 << 10
)

// conn is one accepted connection's pipeline. The handler goroutine itself
// runs the frame reader; workers and the response writer are spawned from
// it and joined before the handler returns.
type conn struct {
	srv      *Server
	nc       net.Conn
	draining chan struct{} // closed by beginDrain
	drainSet sync.Once

	// scanBufs recycles Scan response pair buffers between the workers
	// (serve fills one per Scan) and the writer (writeLoop returns it
	// after encoding), keeping the steady-state Scan path allocation-free.
	// A channel rather than a sync.Pool: handing a slice through a
	// buffered channel boxes nothing.
	scanBufs chan []wire.KV
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		draining: make(chan struct{}),
		scanBufs: make(chan []wire.KV, respQueue),
	}
}

// beginDrain stops the reader: it marks the connection draining and kicks
// the blocked Read with an immediate deadline. Requests already queued keep
// flowing to the workers and their responses still go out (only the read
// side is deadlined).
func (c *conn) beginDrain() {
	c.drainSet.Do(func() {
		close(c.draining)
		c.nc.SetReadDeadline(time.Now())
	})
}

func (c *conn) isDraining() bool {
	select {
	case <-c.draining:
		return true
	default:
		return false
	}
}

// handle runs the connection to completion: reader (this goroutine) →
// bounded request queue → workers (one Session each) → bounded response
// queue → writer. Teardown order mirrors the data flow so every accepted
// request gets its response written before the socket closes.
func (c *conn) handle() {
	s := c.srv
	defer s.wg.Done()
	defer s.dropConn(c)
	s.connsTotal.Add(1)
	s.connsLive.Add(1)
	defer s.connsLive.Add(-1)

	reqs := make(chan wire.Request, reqQueue)
	resps := make(chan wire.Response, respQueue)

	var workers sync.WaitGroup
	for i := 0; i < s.opts.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			ss := s.st.NewSession()
			defer ss.Close()
			for req := range reqs {
				resps <- c.serve(ss, &req)
			}
		}()
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop(resps)
	}()

	c.readLoop(reqs, resps)

	close(reqs)
	workers.Wait()
	close(resps)
	<-writerDone
	c.nc.Close()
}

// readLoop decodes frames into the request queue until EOF, error, or
// drain. A malformed frame gets a best-effort error response (when the id
// survived decoding) and ends the connection: framing is lost, nothing
// after it can be trusted.
func (c *conn) readLoop(reqs chan<- wire.Request, resps chan<- wire.Response) {
	s := c.srv
	br := bufio.NewReaderSize(c.nc, ioBufSize)
	var scratch []byte
	for {
		body, err := wire.ReadFrame(br, s.opts.MaxFrame, scratch)
		if err != nil {
			if !c.isDraining() && !errors.Is(err, net.ErrClosed) {
				s.logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		s.bytesIn.Add(uint64(4 + len(body)))
		req, err := wire.DecodeRequest(body)
		if err != nil {
			s.logf("server: %s: %v", c.nc.RemoteAddr(), err)
			s.ops.Add(1)
			s.errs.Add(1)
			resp := wire.Response{Status: wire.StatusErr, Msg: err.Error()}
			if len(body) >= 8 {
				resp.ID = binary.BigEndian.Uint64(body)
			}
			resps <- resp
			return
		}
		scratch = body[:0]
		reqs <- req
	}
}

// writeLoop encodes responses into a buffered writer, flushing whenever the
// queue momentarily drains — the standard pipelining trade: batched
// syscalls under load, prompt responses when idle. After a write error it
// keeps draining the queue (dropping responses) so workers never block on a
// dead connection.
func (c *conn) writeLoop(resps <-chan wire.Response) {
	s := c.srv
	bw := bufio.NewWriterSize(c.nc, ioBufSize)
	var buf []byte
	broken := false
	for resp := range resps {
		if broken {
			c.recycleScanBuf(&resp)
			continue
		}
		var err error
		buf, err = wire.AppendResponse(buf[:0], &resp)
		if err != nil {
			// Encode failures are server bugs (e.g. an over-long
			// scan); turn them into a wire error for the client.
			buf, _ = wire.AppendResponse(buf[:0], &wire.Response{
				ID: resp.ID, Op: resp.Op,
				Status: wire.StatusErr, Msg: err.Error(),
			})
		}
		// The pair buffer is encoded into buf now; hand it back to the
		// workers for the next Scan.
		c.recycleScanBuf(&resp)
		if _, err := bw.Write(buf); err != nil {
			broken = true
			continue
		}
		s.bytesOut.Add(uint64(len(buf)))
		if len(resps) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}

// recycleScanBuf returns a Scan response's pair buffer to the connection's
// recycle channel once the response no longer needs it (encoded or dropped).
// If the channel is full the buffer is simply left to the GC.
func (c *conn) recycleScanBuf(resp *wire.Response) {
	if resp.Op != wire.OpScan || resp.Pairs == nil {
		return
	}
	select {
	case c.scanBufs <- resp.Pairs[:0]:
	default:
	}
	resp.Pairs = nil
}

// serve executes one request against the worker's session and shapes the
// response. Store-level failures become StatusErr; a closed store (the
// server lost a race with Store.Close) becomes StatusClosed.
func (c *conn) serve(ss *store.Session, req *wire.Request) wire.Response {
	s := c.srv
	s.ops.Add(1)
	resp := wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}
	fail := func(err error) wire.Response {
		s.errs.Add(1)
		resp.Status = wire.StatusErr
		if errors.Is(err, store.ErrClosed) {
			resp.Status = wire.StatusClosed
		}
		resp.Msg = err.Error()
		return resp
	}
	switch req.Op {
	case wire.OpGet:
		v, ok, err := ss.Get(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			return resp
		}
		resp.Val = v
	case wire.OpPut:
		if err := ss.Put(req.Key, req.Val); err != nil {
			return fail(err)
		}
	case wire.OpDelete:
		ok, err := ss.Delete(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
		}
	case wire.OpPutBatch:
		pairs := make([]store.KV, len(req.Pairs))
		for i, kv := range req.Pairs {
			pairs[i] = store.KV{Key: kv.Key, Val: kv.Val}
		}
		if err := ss.PutBatch(pairs); err != nil {
			return fail(err)
		}
	case wire.OpScan:
		max := s.opts.MaxScan
		if req.Max != 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		kvs, err := ss.ScanLimit(req.Lo, req.Hi, max)
		if err != nil {
			return fail(err)
		}
		var pairs []wire.KV
		select {
		case pairs = <-c.scanBufs:
			pairs = pairs[:0]
		default:
		}
		for _, kv := range kvs {
			pairs = append(pairs, wire.KV{Key: kv.Key, Val: kv.Val})
		}
		resp.Pairs = pairs
	case wire.OpStats:
		st := s.Stats()
		resp.Stats = wire.Stats{
			Ops:        st.Ops,
			Errors:     st.Errors,
			BytesIn:    st.BytesIn,
			BytesOut:   st.BytesOut,
			ConnsLive:  st.ConnsLive,
			ConnsTotal: st.ConnsTotal,
		}
	default:
		return fail(errors.New("server: unhandled opcode " + req.Op.String()))
	}
	return resp
}
