package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/store"
	"repro/wire"
)

// reqQueue/respQueue bound the per-connection pipeline depth. Deep enough
// to keep workers busy between flushes, shallow enough that a slow client
// exerts backpressure on its own reads rather than ballooning memory.
const (
	reqQueue  = 256
	respQueue = 256
	ioBufSize = 64 << 10
)

// conn is one accepted connection's pipeline. The handler goroutine itself
// runs the frame reader; workers and the response writer are spawned from
// it and joined before the handler returns.
type conn struct {
	srv      *Server
	nc       net.Conn
	draining chan struct{} // closed by beginDrain
	drainSet sync.Once

	// scanBufs recycles Scan response pair buffers between the workers
	// (serve fills one per Scan) and the writer (writeLoop returns it
	// after encoding), keeping the steady-state Scan path allocation-free.
	// A channel rather than a sync.Pool: handing a slice through a
	// buffered channel boxes nothing. varBufs is the same discipline for
	// the varlen ops' value arenas and pair buffers.
	scanBufs chan []wire.KV
	varBufs  chan *varlenBuf
}

// varlenBuf is the pooled backing store of one varlen response: GetV
// borrows the arena for its value bytes, ScanV additionally borrows the
// pair slice (every Val a subslice of the arena) and the per-pair end
// offsets used to rebuild those subslices after the arena stops growing.
type varlenBuf struct {
	pairs []wire.VKV
	arena []byte
	ends  []int
}

// svResp pairs a wire response with the pooled buffers it borrows, so the
// writer can hand them back to the workers once the response is encoded
// (or dropped on a broken connection).
type svResp struct {
	wire.Response
	vb *varlenBuf
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		draining: make(chan struct{}),
		scanBufs: make(chan []wire.KV, respQueue),
		varBufs:  make(chan *varlenBuf, respQueue),
	}
}

// takeVarBuf fetches a recycled varlen buffer or makes a fresh one.
func (c *conn) takeVarBuf() *varlenBuf {
	select {
	case vb := <-c.varBufs:
		vb.pairs = vb.pairs[:0]
		vb.arena = vb.arena[:0]
		vb.ends = vb.ends[:0]
		return vb
	default:
		return &varlenBuf{}
	}
}

// beginDrain stops the reader: it marks the connection draining and kicks
// the blocked Read with an immediate deadline. Requests already queued keep
// flowing to the workers and their responses still go out (only the read
// side is deadlined).
func (c *conn) beginDrain() {
	c.drainSet.Do(func() {
		close(c.draining)
		c.nc.SetReadDeadline(time.Now())
	})
}

func (c *conn) isDraining() bool {
	select {
	case <-c.draining:
		return true
	default:
		return false
	}
}

// handle runs the connection to completion: reader (this goroutine) →
// bounded request queue → workers (one Session each) → bounded response
// queue → writer. Teardown order mirrors the data flow so every accepted
// request gets its response written before the socket closes.
func (c *conn) handle() {
	s := c.srv
	defer s.wg.Done()
	defer s.dropConn(c)
	s.connsTotal.Add(1)
	s.connsLive.Add(1)
	defer s.connsLive.Add(-1)

	reqs := make(chan wire.Request, reqQueue)
	resps := make(chan svResp, respQueue)

	var workers sync.WaitGroup
	for i := 0; i < s.opts.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			ss := s.st.NewSession()
			defer ss.Close()
			for req := range reqs {
				resps <- c.serve(ss, &req)
			}
		}()
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop(resps)
	}()

	c.readLoop(reqs, resps)

	close(reqs)
	workers.Wait()
	close(resps)
	<-writerDone
	c.nc.Close()
}

// readLoop decodes frames into the request queue until EOF, error, or
// drain. A malformed frame gets a best-effort error response (when the id
// survived decoding) and ends the connection: framing is lost, nothing
// after it can be trusted.
func (c *conn) readLoop(reqs chan<- wire.Request, resps chan<- svResp) {
	s := c.srv
	br := bufio.NewReaderSize(c.nc, ioBufSize)
	var scratch []byte
	for {
		body, err := wire.ReadFrame(br, s.opts.MaxFrame, scratch)
		if err != nil {
			if !c.isDraining() && !errors.Is(err, net.ErrClosed) {
				s.logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		s.bytesIn.Add(uint64(4 + len(body)))
		req, err := wire.DecodeRequest(body)
		if err != nil {
			s.logf("server: %s: %v", c.nc.RemoteAddr(), err)
			s.ops.Add(1)
			s.errs.Add(1)
			resp := wire.Response{Status: wire.StatusErr, Msg: err.Error()}
			if len(body) >= 8 {
				resp.ID = binary.BigEndian.Uint64(body)
			}
			resps <- svResp{Response: resp}
			return
		}
		scratch = body[:0]
		reqs <- req
	}
}

// writeLoop encodes responses into a buffered writer, flushing whenever the
// queue momentarily drains — the standard pipelining trade: batched
// syscalls under load, prompt responses when idle. After a write error it
// keeps draining the queue (dropping responses) so workers never block on a
// dead connection.
func (c *conn) writeLoop(resps <-chan svResp) {
	s := c.srv
	bw := bufio.NewWriterSize(c.nc, ioBufSize)
	var buf []byte
	broken := false
	for resp := range resps {
		if broken {
			c.recycleRespBufs(&resp)
			continue
		}
		var err error
		buf, err = wire.AppendResponse(buf[:0], &resp.Response)
		if err != nil {
			// Encode failures are server bugs (e.g. an over-long
			// scan); turn them into a wire error for the client.
			buf, _ = wire.AppendResponse(buf[:0], &wire.Response{
				ID: resp.ID, Op: resp.Op,
				Status: wire.StatusErr, Msg: err.Error(),
			})
		}
		// The pair/value buffers are encoded into buf now; hand them
		// back to the workers for the next request.
		c.recycleRespBufs(&resp)
		if _, err := bw.Write(buf); err != nil {
			broken = true
			continue
		}
		s.bytesOut.Add(uint64(len(buf)))
		if len(resps) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}

// recycleRespBufs returns a response's pooled buffers — the Scan pair
// buffer and/or the varlen buffer — to the connection's recycle channels
// once the response no longer needs them (encoded or dropped). If a channel
// is full the buffer is simply left to the GC.
func (c *conn) recycleRespBufs(resp *svResp) {
	if resp.Op == wire.OpScan && resp.Pairs != nil {
		select {
		case c.scanBufs <- resp.Pairs[:0]:
		default:
		}
		resp.Pairs = nil
	}
	if resp.vb != nil {
		select {
		case c.varBufs <- resp.vb:
		default:
		}
		resp.vb = nil
		resp.VVal, resp.VPairs = nil, nil
	}
}

// serve executes one request against the worker's session and shapes the
// response. Store-level failures become StatusErr; a closed store (the
// server lost a race with Store.Close) becomes StatusClosed. Responses that
// borrow pooled buffers (Scan pairs, varlen values) carry them in the
// svResp wrapper for the writer to recycle.
func (c *conn) serve(ss *store.Session, req *wire.Request) svResp {
	s := c.srv
	s.ops.Add(1)
	out := svResp{Response: wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}}
	resp := &out.Response
	fail := func(err error) svResp {
		s.errs.Add(1)
		resp.Status = wire.StatusErr
		if errors.Is(err, store.ErrClosed) {
			resp.Status = wire.StatusClosed
		}
		resp.Msg = err.Error()
		resp.VVal, resp.VPairs = nil, nil
		return out
	}
	switch req.Op {
	case wire.OpGet:
		v, ok, err := ss.Get(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			return out
		}
		resp.Val = v
	case wire.OpPut:
		if err := ss.Put(req.Key, req.Val); err != nil {
			return fail(err)
		}
	case wire.OpDelete:
		ok, err := ss.Delete(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
		}
	case wire.OpPutBatch:
		pairs := make([]store.KV, len(req.Pairs))
		for i, kv := range req.Pairs {
			pairs[i] = store.KV{Key: kv.Key, Val: kv.Val}
		}
		if err := ss.PutBatch(pairs); err != nil {
			return fail(err)
		}
	case wire.OpScan:
		max := s.opts.MaxScan
		if req.Max != 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		kvs, err := ss.ScanLimit(req.Lo, req.Hi, max)
		if err != nil {
			return fail(err)
		}
		var pairs []wire.KV
		select {
		case pairs = <-c.scanBufs:
			pairs = pairs[:0]
		default:
		}
		for _, kv := range kvs {
			pairs = append(pairs, wire.KV{Key: kv.Key, Val: kv.Val})
		}
		resp.Pairs = pairs
	case wire.OpGetV:
		vb := c.takeVarBuf()
		out.vb = vb
		val, ok, err := ss.GetBytes(req.Key, vb.arena[:0])
		if err != nil {
			return fail(err)
		}
		vb.arena = val
		if !ok {
			resp.Status = wire.StatusNotFound
			return out
		}
		resp.VVal = val
	case wire.OpPutV:
		if err := ss.PutBytes(req.Key, req.VVal); err != nil {
			return fail(err)
		}
	case wire.OpScanV:
		max := s.opts.MaxScan
		if req.Max != 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		vb := c.takeVarBuf()
		out.vb = vb
		// The response must stay under the frame cap: count bounded by
		// max, bytes bounded by a budget charging each pair's 12-byte
		// header as it is appended. A first value too big for the budget
		// alone is still sent (progress guarantee; it fits a frame since
		// values are capped at wire.MaxValue); anything later that would
		// overflow ends the page.
		budget := int(wire.MaxFrame) - 64
		var oversizedKey uint64
		oversized := false
		err := ss.ScanBytes(req.Lo, req.Hi, max, func(k uint64, v []byte) bool {
			if len(v) > wire.MaxValue {
				// Stored through the embedded API above the wire cap;
				// an empty page here would strand paginating clients,
				// so surface it as the request's failure instead.
				if len(vb.pairs) == 0 {
					oversized, oversizedKey = true, k
				}
				return false
			}
			used := len(vb.arena) + 12*len(vb.pairs)
			if len(vb.pairs) > 0 && used+12+len(v) > budget {
				return false
			}
			vb.arena = append(vb.arena, v...)
			vb.pairs = append(vb.pairs, wire.VKV{Key: k})
			vb.ends = append(vb.ends, len(vb.arena))
			return len(vb.pairs) < max && len(vb.arena)+12*len(vb.pairs) < budget
		})
		if err != nil {
			return fail(err)
		}
		if oversized {
			return fail(fmt.Errorf("server: value at key %d exceeds the wire size cap", oversizedKey))
		}
		// The arena has stopped moving; point the pairs into it.
		start := 0
		for i := range vb.pairs {
			vb.pairs[i].Val = vb.arena[start:vb.ends[i]:vb.ends[i]]
			start = vb.ends[i]
		}
		resp.VPairs = vb.pairs
	case wire.OpStats:
		st := s.Stats()
		vs := s.st.ValueStats()
		resp.Stats = wire.Stats{
			Ops:           st.Ops,
			Errors:        st.Errors,
			BytesIn:       st.BytesIn,
			BytesOut:      st.BytesOut,
			ConnsLive:     st.ConnsLive,
			ConnsTotal:    st.ConnsTotal,
			VlogLive:      uint64(vs.Live),
			VlogGarbage:   uint64(vs.Garbage),
			VlogReclaimed: uint64(vs.Reclaimed),
		}
	default:
		return fail(errors.New("server: unhandled opcode " + req.Op.String()))
	}
	return out
}
