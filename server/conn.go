package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/store"
	"repro/wire"
)

const ioBufSize = 64 << 10

// conn is one accepted connection on the steered pipeline. The handler
// goroutine runs the frame reader; the response writer is spawned from it;
// request execution happens either inline on the reader (small batches,
// nothing steered) or on the connection's home worker (see steer.go).
type conn struct {
	srv      *Server
	nc       net.Conn
	home     int           // ring index every steered batch goes to
	draining chan struct{} // closed by beginDrain
	drainSet sync.Once

	// The flow-control trio. credits is a counting semaphore sized
	// Options.MaxInflight and pre-filled: the reader takes one credit per
	// request before dispatching it, the writer returns one per response
	// it has finished with (encoded or dropped). respCh has the same
	// capacity, so at most MaxInflight responses can ever be queued and a
	// send into respCh never blocks — workers cannot be stalled by a slow
	// client. inflight counts dispatched-but-unwritten requests; the
	// writer uses it to tell "the pipe is empty, flush now" from "more
	// responses are coming, coalesce".
	credits  chan struct{}
	respCh   chan svResp
	inflight atomic.Int64

	// steered counts this connection's requests handed to its home ring
	// whose responses are not yet queued. The reader's inline fast path
	// requires it to be zero, which preserves execution order across the
	// inline/steered boundary.
	steered atomic.Int64

	// sampleCtr drives stage-latency sampling on the inline path. Only
	// the reader goroutine touches it (inline execution runs there);
	// steered execution uses the worker's own counter.
	sampleCtr uint32

	// issued is the reader's final request count, published (then
	// readerDone closed) when the reader exits so the writer knows how
	// many responses it still owes. -1 until the reader is done.
	issued     atomic.Int64
	readerDone chan struct{}

	// scanBufs recycles Scan response pair buffers between serve (fills
	// one per Scan) and the writer (returns it after encoding), keeping
	// the steady-state Scan path allocation-free. A channel rather than a
	// sync.Pool: handing a slice through a buffered channel boxes
	// nothing. varBufs is the same discipline for the varlen ops' value
	// arenas and pair buffers.
	scanBufs chan []wire.KV
	varBufs  chan *varlenBuf
}

// varlenBuf is the pooled backing store of one varlen response: GetV and
// GetK borrow the arena for their value bytes, ScanV additionally borrows
// the pair slice (every Val a subslice of the arena) and the per-pair end
// offsets used to rebuild those subslices after the arena stops growing.
// ScanK borrows kpairs the same way, with two ends per pair (key end,
// value end) since both the key and the value live in the arena.
type varlenBuf struct {
	pairs  []wire.VKV
	kpairs []wire.KKV
	arena  []byte
	ends   []int
}

// svResp pairs a wire response with the pooled buffers it borrows, so the
// writer can hand them back once the response is encoded (or dropped on a
// broken connection), and the mnow() time the response became ready, so
// the writer can charge the flush-wait stage at the write syscall. A zero
// served (protocol-error responses, which never executed) records nothing.
type svResp struct {
	wire.Response
	vb     *varlenBuf
	served int64
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:        s,
		nc:         nc,
		home:       int(s.nextHome.Add(1)-1) % s.opts.Workers,
		draining:   make(chan struct{}),
		credits:    make(chan struct{}, s.opts.MaxInflight),
		respCh:     make(chan svResp, s.opts.MaxInflight),
		readerDone: make(chan struct{}),
		scanBufs:   make(chan []wire.KV, 16),
		varBufs:    make(chan *varlenBuf, 16),
	}
	c.issued.Store(-1)
	for i := 0; i < s.opts.MaxInflight; i++ {
		c.credits <- struct{}{}
	}
	return c
}

// takeVarBuf fetches a recycled varlen buffer or makes a fresh one.
func (c *conn) takeVarBuf() *varlenBuf {
	select {
	case vb := <-c.varBufs:
		vb.pairs = vb.pairs[:0]
		vb.kpairs = vb.kpairs[:0]
		vb.arena = vb.arena[:0]
		vb.ends = vb.ends[:0]
		return vb
	default:
		return &varlenBuf{}
	}
}

// beginDrain stops the reader: it marks the connection draining and kicks
// the blocked Read with an immediate deadline. Requests already queued keep
// flowing to the workers and their responses still go out (only the read
// side is deadlined).
func (c *conn) beginDrain() {
	c.drainSet.Do(func() {
		close(c.draining)
		c.nc.SetReadDeadline(time.Now())
	})
}

func (c *conn) isDraining() bool {
	select {
	case <-c.draining:
		return true
	default:
		return false
	}
}

// handle runs the connection to completion: reader (this goroutine) →
// inline serve or home ring → response queue → writer. The writer is
// joined before the socket closes, and it only exits once it has written
// (or dropped) a response for every request the reader issued — so every
// accepted request is answered even when execution is spread across shared
// workers.
func (c *conn) handle() {
	s := c.srv
	defer s.wg.Done()
	defer s.dropConn(c)
	s.connsTotal.Add(1)
	s.connsLive.Add(1)
	defer s.connsLive.Add(-1)

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()

	issued := c.readLoop()

	c.issued.Store(int64(issued))
	close(c.readerDone)
	<-writerDone
	c.nc.Close()
}

// readLoop ingests frames until EOF, error, or drain, and returns how many
// requests it dispatched. Each wakeup decodes every complete frame already
// buffered (up to maxIngest) into one batch, then dispatches the batch as
// a unit: inline on this goroutine when it is small and nothing from this
// connection is steered, otherwise as one slab handed to the home ring. A
// malformed frame gets a best-effort error response (when the id survived
// decoding) and ends the connection: framing is lost, nothing after it can
// be trusted.
func (c *conn) readLoop() (issued int) {
	s := c.srv
	br := bufio.NewReaderSize(c.nc, ioBufSize)
	ss := s.st.NewSession()
	defer ss.Close()
	var scratch []byte
	var batch []wire.Request
	dispatch := func() {
		if len(batch) == 0 {
			return
		}
		// Credits for every batched request are already held (taken as
		// each frame was decoded), so the responses always fit respCh.
		s.readBatches.Add(1)
		s.met.readBatch.Record(int64(len(batch)))
		c.inflight.Add(int64(len(batch)))
		issued += len(batch)
		// t0 starts every batched request's queue-wait clock: inline
		// execution begins immediately (queue wait ~0), a steered batch
		// waits in its home ring.
		t0 := s.mnow()
		if s.opts.InlineBatch >= 0 && len(batch) <= s.opts.InlineBatch &&
			c.steered.Load() == 0 {
			s.inlineOps.Add(uint64(len(batch)))
			for i := range batch {
				c.respCh <- c.executeOne(ss, &batch[i], t0, c.home, &c.sampleCtr)
			}
		} else {
			s.steeredOps.Add(uint64(len(batch)))
			c.steered.Add(int64(len(batch)))
			slab := append(s.takeSlab(), batch...)
			s.rings[c.home] <- task{c: c, reqs: slab, t0: t0}
		}
		batch = batch[:0]
	}
	for {
		// First frame of the wakeup: a blocking read, bounded by the idle
		// timeout when one is set. beginDrain may race this and must win:
		// re-checking draining after arming the idle deadline guarantees
		// the drain's immediate deadline is never overwritten for longer
		// than one check.
		if d := s.opts.IdleTimeout; d > 0 && !c.isDraining() {
			c.nc.SetReadDeadline(time.Now().Add(d))
			if c.isDraining() {
				c.nc.SetReadDeadline(time.Now())
			}
		}
		body, err := wire.ReadFrame(br, s.opts.MaxFrame, scratch)
		if err != nil {
			c.noteReadEnd(err)
			return issued
		}
		for {
			s.bytesIn.Add(uint64(wire.FrameHdrSize + len(body)))
			req, derr := wire.DecodeRequest(body)
			if derr != nil {
				// Framing is lost; answer what decoded, then the error,
				// then hang up. dispatch-before-protoErr keeps the
				// credit wait deadlock-free (see below).
				s.logf("server: %s: %v", c.nc.RemoteAddr(), derr)
				dispatch()
				c.protoErr(body, derr, &issued)
				return issued
			}
			scratch = body[:0]
			// One credit per request, taken before it joins the batch.
			// If none is free, dispatch what we have first: then every
			// held credit belongs to a dispatched request, whose
			// response must eventually hand the credit back — so the
			// blocking take below cannot deadlock, and a full window
			// means this reader (alone) stalls until its client drains.
			select {
			case <-c.credits:
			default:
				dispatch()
				<-c.credits
			}
			// Global admission: past Options.MaxServerInflight the request
			// is shed with StatusBusy instead of joining the batch. The
			// credit just taken stays charged to the shed response, so the
			// writer's accounting is identical either way.
			if !s.tryAdmit() {
				c.shed(&req, &issued)
			} else {
				batch = append(batch, req)
			}
			if len(batch) >= maxIngest || !wire.FrameBuffered(br, s.opts.MaxFrame) {
				break
			}
			if body, err = wire.ReadFrame(br, s.opts.MaxFrame, scratch); err != nil {
				// FrameBuffered said a whole frame (or an oversized
				// length) was buffered, so this is a reject, not a
				// blocked read; dispatch what we have and die.
				c.noteReadEnd(err)
				dispatch()
				return issued
			}
		}
		dispatch()
	}
}

// noteReadEnd classifies why the reader stopped, for the failure counters:
// a drain or a clean client EOF is nobody's fault, an idle-timeout expiry
// counts in idleCloses, and anything else — resets, frames torn mid-read,
// checksum failures — counts in resets.
func (c *conn) noteReadEnd(err error) {
	s := c.srv
	switch {
	case c.isDraining() || errors.Is(err, net.ErrClosed):
		// Shutdown kicked the read; not a failure.
	case errors.Is(err, io.EOF):
		// Clean close: the client finished between frames.
	case errors.Is(err, os.ErrDeadlineExceeded):
		s.idleCloses.Add(1)
		s.logf("server: %s: closing idle connection (no frame in %v)",
			c.nc.RemoteAddr(), s.opts.IdleTimeout)
	default:
		s.resets.Add(1)
		s.logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
	}
}

// shed answers one admitted-over-cap request with StatusBusy without
// executing it. The caller already holds the request's credit; like
// protoErr, the response flows through respCh so the writer's
// issued/handled accounting stays exact.
func (c *conn) shed(req *wire.Request, issued *int) {
	s := c.srv
	s.ops.Add(1)
	s.shed.Add(1)
	s.met.reqs[opSlot(req.Op)].Inc(c.home)
	c.inflight.Add(1)
	*issued++
	c.respCh <- svResp{Response: wire.Response{
		ID: req.ID, Op: req.Op, Status: wire.StatusBusy,
		Msg: "server: overloaded, retry later",
	}}
}

// protoErr queues the error response for an undecodable frame, charging it
// a credit like any request so the writer's accounting stays exact.
func (c *conn) protoErr(body []byte, err error, issued *int) {
	s := c.srv
	s.ops.Add(1)
	s.errs.Add(1)
	s.met.reqs[0].Inc(c.home)
	s.met.errs[0].Inc(c.home)
	s.resets.Add(1) // the connection is cut right after this response
	resp := wire.Response{Status: wire.StatusErr, Msg: err.Error()}
	if len(body) >= 8 {
		resp.ID = binary.BigEndian.Uint64(body)
	}
	<-c.credits
	c.inflight.Add(1)
	*issued++
	c.respCh <- svResp{Response: resp}
}

// writeLoop coalesces responses into a slab and flushes it with single
// Write calls under an explicit policy: flush when the slab reaches
// Options.FlushBytes, when it holds Options.FlushPending responses, when
// nothing is left in flight (a waiting client gets its answer
// immediately), or when responses are in flight but none arrives within
// Options.FlushDelay (bounding coalescing-added latency). After a write
// error it keeps draining — dropping responses, recycling their buffers,
// returning their credits — until it has accounted for every request the
// reader issued, so workers and the reader can never deadlock on a dead
// connection.
func (c *conn) writeLoop() {
	s := c.srv
	opts := &s.opts
	var slab []byte
	var timer *time.Timer
	// pendMeta mirrors the slab's responses (op slot + ready time) so a
	// successful flush can charge each one's flush-wait stage; the slice is
	// reused across flushes.
	type respMeta struct {
		slot   uint8
		served int64
	}
	var pendMeta []respMeta
	pend := 0
	broken := false
	flush := func() {
		if len(slab) > 0 && !broken {
			if _, err := c.nc.Write(slab); err != nil {
				broken = true
			} else {
				s.bytesOut.Add(uint64(len(slab)))
				s.flushes.Add(1)
				s.met.flushBytes.Record(int64(len(slab)))
				s.met.flushPend.Record(int64(pend))
				now := s.mnow()
				for _, pm := range pendMeta {
					s.met.flush[pm.slot].Record(now - pm.served)
				}
			}
		}
		slab = slab[:0]
		pendMeta = pendMeta[:0]
		pend = 0
	}
	var handled, issued int64 = 0, -1
	for issued < 0 || handled < issued {
		var resp svResp
		if issued < 0 {
			if len(slab) == 0 {
				select {
				case resp = <-c.respCh:
				case <-c.readerDone:
					issued = c.issued.Load()
					continue
				}
			} else {
				select {
				case resp = <-c.respCh:
				default:
					if c.inflight.Load() == 0 {
						flush()
						continue
					}
					if timer == nil {
						timer = time.NewTimer(opts.FlushDelay)
					} else {
						timer.Reset(opts.FlushDelay)
					}
					select {
					case resp = <-c.respCh:
						timer.Stop()
					case <-timer.C:
						flush()
						continue
					case <-c.readerDone:
						timer.Stop()
						issued = c.issued.Load()
						continue
					}
				}
			}
		} else {
			// The reader is gone and owes us issued-handled more
			// responses; nothing new can arrive, so flush before any
			// blocking wait.
			select {
			case resp = <-c.respCh:
			default:
				flush()
				resp = <-c.respCh
			}
		}
		handled++
		c.inflight.Add(-1)
		if !broken {
			slab = wire.MustAppendResponse(slab, &resp.Response)
			pend++
			if resp.served != 0 {
				pendMeta = append(pendMeta, respMeta{uint8(opSlot(resp.Op)), resp.served})
			}
		}
		c.recycleRespBufs(&resp)
		c.credits <- struct{}{}
		if len(slab) >= opts.FlushBytes || pend >= opts.FlushPending {
			flush()
		}
	}
	flush()
}

// recycleRespBufs returns a response's pooled buffers — the Scan pair
// buffer and/or the varlen buffer — to the connection's recycle channels
// once the response no longer needs them (encoded or dropped). If a channel
// is full the buffer is simply left to the GC.
func (c *conn) recycleRespBufs(resp *svResp) {
	if resp.Op == wire.OpScan && resp.Pairs != nil {
		select {
		case c.scanBufs <- resp.Pairs[:0]:
		default:
		}
		resp.Pairs = nil
	}
	if resp.vb != nil {
		select {
		case c.varBufs <- resp.vb:
		default:
		}
		resp.vb = nil
		resp.VVal, resp.VPairs, resp.KPairs = nil, nil, nil
	}
}

// latencySampleMask sets the server's stage-latency sampling rate to one
// in (mask+1) requests; must be a power of two minus one. Two clock
// reads cost ~100ns on some hosts, so sampling keeps the pipeline's
// per-request overhead to a counter increment and a branch. Setting
// Options.SlowOpThreshold forces every request onto the clocked path —
// the slow-op log must not sample — at that clocking cost.
var latencySampleMask uint32 = 7

// executeOne runs one request through serve with the stage instrumentation
// around it: the queue-wait histogram (batch ingest t0 to execution start),
// the execute histogram, the per-class whole-request histogram backing the
// wire Stats latency summary, and the slow-op check. Stage latencies are
// sampled one in latencySampleMask+1 requests via ctr, a counter owned by
// the calling executor goroutine (the reader's on the inline path, the
// worker's on the steered path). wid hints the striped counters. A sampled
// response carries its ready time so the writer can charge the flush-wait
// stage; an unsampled one carries zero and the writer skips it.
func (c *conn) executeOne(ss *store.Session, req *wire.Request, t0 int64, wid int, ctr *uint32) svResp {
	s := c.srv
	*ctr++
	if *ctr&latencySampleMask != 0 && s.opts.SlowOpThreshold == 0 {
		out := c.serve(ss, req, wid)
		s.releaseAdmit()
		return out
	}
	start := s.mnow()
	out := c.serve(ss, req, wid)
	s.releaseAdmit()
	now := s.mnow()
	slot := opSlot(req.Op)
	m := s.met
	m.queue[slot].Record(start - t0)
	m.exec[slot].Record(now - start)
	m.class[opClasses[slot]].Record(now - t0)
	if thr := int64(s.opts.SlowOpThreshold); thr > 0 && now-t0 >= thr {
		s.noteSlow(req, slot, start-t0, now-start, now)
	}
	if now == 0 {
		now = 1 // mnow()==0 only at the epoch instant; keep served != 0
	}
	out.served = now
	return out
}

// serve executes one request against the given session and shapes the
// response. Store-level failures become StatusErr; a closed store (the
// server lost a race with Store.Close) becomes StatusClosed; a Txn commit
// that crossed its commit point but failed to apply becomes
// StatusTxnIncomplete so clients can tell "committed, pending replay"
// from "refused, nothing applied". Responses that
// borrow pooled buffers (Scan pairs, varlen values) carry them in the
// svResp wrapper for the writer to recycle. wid hints the per-opcode
// striped counters.
func (c *conn) serve(ss *store.Session, req *wire.Request, wid int) svResp {
	s := c.srv
	s.ops.Add(1)
	slot := opSlot(req.Op)
	s.met.reqs[slot].Inc(wid)
	out := svResp{Response: wire.Response{ID: req.ID, Op: req.Op, Status: wire.StatusOK}}
	resp := &out.Response
	fail := func(err error) svResp {
		s.errs.Add(1)
		s.met.errs[slot].Inc(wid)
		resp.Status = wire.StatusErr
		switch {
		case errors.Is(err, store.ErrClosed):
			resp.Status = wire.StatusClosed
		case errors.Is(err, store.ErrNoSpace):
			resp.Status = wire.StatusNoSpace
		case errors.Is(err, store.ErrTxnIncomplete):
			// The transaction reached its commit point: it is durable
			// and replays at the next reopen, but is not yet visible.
			// ErrReopenRequired (a later commit refused by the latch)
			// stays StatusErr — that one really did apply nothing.
			resp.Status = wire.StatusTxnIncomplete
		}
		resp.Msg = err.Error()
		resp.VVal, resp.VPairs, resp.KPairs = nil, nil, nil
		return out
	}
	switch req.Op {
	case wire.OpGet:
		v, ok, err := ss.Get(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			return out
		}
		resp.Val = v
	case wire.OpPut:
		if err := ss.Put(req.Key, req.Val); err != nil {
			return fail(err)
		}
	case wire.OpDelete:
		ok, err := ss.Delete(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
		}
	case wire.OpPutBatch:
		pairs := make([]store.KV, len(req.Pairs))
		for i, kv := range req.Pairs {
			pairs[i] = store.KV{Key: kv.Key, Val: kv.Val}
		}
		if err := ss.PutBatch(pairs); err != nil {
			return fail(err)
		}
	case wire.OpScan:
		max := s.opts.MaxScan
		if req.Max != 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		kvs, err := ss.ScanLimit(req.Lo, req.Hi, max)
		if err != nil {
			return fail(err)
		}
		var pairs []wire.KV
		select {
		case pairs = <-c.scanBufs:
			pairs = pairs[:0]
		default:
		}
		for _, kv := range kvs {
			pairs = append(pairs, wire.KV{Key: kv.Key, Val: kv.Val})
		}
		resp.Pairs = pairs
	case wire.OpGetV:
		vb := c.takeVarBuf()
		out.vb = vb
		val, ok, err := ss.GetBytes(req.Key, vb.arena[:0])
		if err != nil {
			return fail(err)
		}
		vb.arena = val
		if !ok {
			resp.Status = wire.StatusNotFound
			return out
		}
		resp.VVal = val
	case wire.OpPutV:
		if err := ss.PutBytes(req.Key, req.VVal); err != nil {
			return fail(err)
		}
	case wire.OpScanV:
		max := s.opts.MaxScan
		if req.Max != 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		vb := c.takeVarBuf()
		out.vb = vb
		// The response must stay under the frame cap: count bounded by
		// max, bytes bounded by a budget charging each pair's 12-byte
		// header as it is appended. A first value too big for the budget
		// alone is still sent (progress guarantee; it fits a frame since
		// values are capped at wire.MaxValue); anything later that would
		// overflow ends the page.
		budget := int(wire.MaxFrame) - 64
		var oversizedKey uint64
		oversized := false
		err := ss.ScanBytes(req.Lo, req.Hi, max, func(k uint64, v []byte) bool {
			if len(v) > wire.MaxValue {
				// Stored through the embedded API above the wire cap;
				// an empty page here would strand paginating clients,
				// so surface it as the request's failure instead.
				if len(vb.pairs) == 0 {
					oversized, oversizedKey = true, k
				}
				return false
			}
			used := len(vb.arena) + 12*len(vb.pairs)
			if len(vb.pairs) > 0 && used+12+len(v) > budget {
				return false
			}
			vb.arena = append(vb.arena, v...)
			vb.pairs = append(vb.pairs, wire.VKV{Key: k})
			vb.ends = append(vb.ends, len(vb.arena))
			return len(vb.pairs) < max && len(vb.arena)+12*len(vb.pairs) < budget
		})
		if err != nil {
			return fail(err)
		}
		if oversized {
			return fail(fmt.Errorf("server: value at key %d exceeds the wire size cap", oversizedKey))
		}
		// The arena has stopped moving; point the pairs into it.
		start := 0
		for i := range vb.pairs {
			vb.pairs[i].Val = vb.arena[start:vb.ends[i]:vb.ends[i]]
			start = vb.ends[i]
		}
		resp.VPairs = vb.pairs
	case wire.OpGetK:
		vb := c.takeVarBuf()
		out.vb = vb
		val, ok, err := ss.GetKV(req.KKey, vb.arena[:0])
		if err != nil {
			return fail(err)
		}
		vb.arena = val
		if !ok {
			resp.Status = wire.StatusNotFound
			return out
		}
		resp.VVal = val
	case wire.OpPutK:
		if err := ss.PutKV(req.KKey, req.VVal); err != nil {
			return fail(err)
		}
	case wire.OpDeleteK:
		ok, err := ss.DeleteKV(req.KKey)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = wire.StatusNotFound
		}
	case wire.OpScanK:
		max := s.opts.MaxScan
		if req.Max != 0 && int(req.Max) < max {
			max = int(req.Max)
		}
		vb := c.takeVarBuf()
		out.vb = vb
		// Same frame-cap discipline as ScanV, with a 6-byte per-pair
		// header (klen u16 + vlen u32) and the key bytes charged along
		// with the value. The first pair always fits: keys are capped at
		// wire.MaxKey and stored values at wire.MaxKValue = MaxFrame-2048.
		// Both key and value land in the arena; ends records two offsets
		// per pair so the subslices can be rebuilt once it stops growing.
		budget := int(wire.MaxFrame) - 64
		err := ss.ScanKV(req.KLo, req.KHi, max, func(k, v []byte) bool {
			used := len(vb.arena) + 6*len(vb.kpairs)
			if len(vb.kpairs) > 0 && used+6+len(k)+len(v) > budget {
				return false
			}
			vb.arena = append(vb.arena, k...)
			vb.ends = append(vb.ends, len(vb.arena))
			vb.arena = append(vb.arena, v...)
			vb.ends = append(vb.ends, len(vb.arena))
			vb.kpairs = append(vb.kpairs, wire.KKV{})
			return len(vb.kpairs) < max && len(vb.arena)+6*len(vb.kpairs) < budget
		})
		if err != nil {
			return fail(err)
		}
		start := 0
		for i := range vb.kpairs {
			ke, ve := vb.ends[2*i], vb.ends[2*i+1]
			vb.kpairs[i].Key = vb.arena[start:ke:ke]
			if ve > ke {
				vb.kpairs[i].Val = vb.arena[ke:ve:ve]
			}
			start = ve
		}
		resp.KPairs = vb.kpairs
	case wire.OpTxn:
		// The whole write-set commits atomically through the store's
		// redo-log protocol, on this executor's session (sessions are
		// per-goroutine, honoring Commit's single-goroutine contract).
		tx := ss.Begin()
		for i := range req.TxnOps {
			op := &req.TxnOps[i]
			var err error
			switch op.Kind {
			case wire.TxnPut:
				err = tx.Put(op.Key, op.Val)
			case wire.TxnDelete:
				err = tx.Delete(op.Key)
			case wire.TxnPutK:
				err = tx.PutKV(op.KKey, op.VVal)
			case wire.TxnDeleteK:
				err = tx.DeleteKV(op.KKey)
			default:
				err = fmt.Errorf("server: txn op %d has unknown kind %d", i, op.Kind)
			}
			if err != nil {
				tx.Rollback()
				return fail(err)
			}
		}
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
	case wire.OpStats:
		st := s.Stats()
		vs := s.st.ValueStats()
		sum := s.met.classSummary()
		resp.Stats = wire.Stats{
			Ops:           st.Ops,
			Errors:        st.Errors,
			BytesIn:       st.BytesIn,
			BytesOut:      st.BytesOut,
			ConnsLive:     st.ConnsLive,
			ConnsTotal:    st.ConnsTotal,
			VlogLive:      uint64(vs.Live),
			VlogGarbage:   uint64(vs.Garbage),
			VlogReclaimed: uint64(vs.Reclaimed),
			Shed:          st.Shed,
			IdleCloses:    st.IdleCloses,
			Resets:        st.Resets,
			ReadP50:       sum[0],
			ReadP99:       sum[1],
			WriteP50:      sum[2],
			WriteP99:      sum[3],
			ScanP50:       sum[4],
			ScanP99:       sum[5],
		}
	default:
		return fail(errors.New("server: unhandled opcode " + req.Op.String()))
	}
	return out
}
