// Package server serves a store.Store over TCP using the pmkv wire
// protocol (package wire): length-prefixed binary frames with client-chosen
// request ids, so one connection carries many in-flight requests and
// responses stream back as they complete.
//
// The data path is a steered, batching pipeline. Each connection's reader
// decodes every complete frame already buffered per read wakeup into one
// batch; small batches execute inline on the reader itself, larger ones
// are handed — as a single slab — to the connection's home worker, one of
// Options.Workers server-wide workers that each own a store.Session and
// serve many connections (see steer.go). A per-connection writer coalesces
// responses into slabs and flushes them with single Write calls under an
// explicit byte / count / delay policy. Responses may leave in a different
// order than requests arrived; the echoed id is the contract — but a
// connection's requests always *execute* in arrival order, so same-key
// operations on one connection are totally ordered.
//
// A connection may hold at most Options.MaxInflight unanswered requests;
// past that its reader stops, exerting TCP backpressure on that client
// alone. Because response queues are sized to that bound, workers never
// block on a slow client, and one stalled connection cannot stall another.
//
// Shutdown is graceful by default: Shutdown stops the listeners, lets every
// queued request finish, flushes the responses, and only then returns — so
// the caller can Close the store knowing no request is in flight. A session
// that races the store's Close anyway fails with store.ErrClosed, which the
// server reports as wire.StatusClosed rather than tearing the connection.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/store"
	"repro/wire"
)

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown or
// Close, mirroring net/http's contract.
var ErrServerClosed = errors.New("server: closed")

// Options configures a Server. The zero value is ready for use.
type Options struct {
	// Workers is the number of server-wide request-processing goroutines,
	// each owning one store.Session and serving batches from every
	// connection steered to it (connections are spread round-robin).
	// Default: runtime.GOMAXPROCS(0).
	Workers int
	// MaxInflight caps one connection's unanswered requests. Past it the
	// connection's reader stops until responses drain, bounding the
	// server-side memory a slow client can pin and guaranteeing workers
	// never block writing responses. Default 256.
	MaxInflight int
	// InlineBatch is the largest ingest batch the reader executes on its
	// own goroutine instead of steering to a worker, provided nothing
	// from the connection is currently steered (preserving execution
	// order). Inline execution skips the handoff entirely — the win for
	// unpipelined and lightly-pipelined clients. Negative disables
	// inlining; 0 means the default, 16.
	InlineBatch int
	// FlushBytes flushes the writer's coalescing slab when it reaches
	// this many encoded bytes. Default 64 KiB.
	FlushBytes int
	// FlushPending flushes the slab when it holds this many responses.
	// Default 64.
	FlushPending int
	// FlushDelay bounds how long a coalesced response may wait for
	// company while more requests are in flight. A slab is always
	// flushed immediately once nothing is in flight, so this delay is
	// only ever added under pipelining, where it trades a bounded
	// latency bump for fewer write syscalls. Default 200µs.
	FlushDelay time.Duration
	// MaxFrame caps an incoming frame body in bytes. Default
	// wire.MaxFrame.
	MaxFrame uint32
	// MaxScan caps the pairs returned by one Scan request, bounding the
	// response frame. Requests asking for more are truncated to this.
	// Default wire.MaxPairs.
	MaxScan int
	// Logf, when set, receives connection-level diagnostics (accept and
	// protocol failures) and the slow-op log. Default: silent.
	Logf func(format string, args ...any)
	// SlowOpThreshold, when positive, logs (via Logf, rate-limited to one
	// line per 100ms with a suppressed count) every request whose queue
	// wait plus execution time meets it, with its op, key, and per-stage
	// breakdown. Setting it also switches the stage-latency histograms
	// from 1-in-8 sampling to clocking every request (two extra clock
	// reads per request), since the slow-op log must not sample.
	// Default: disabled.
	SlowOpThreshold time.Duration
	// IdleTimeout closes a connection whose reader sees no frame for this
	// long: an abandoned peer (half-open TCP, a crashed client whose FIN
	// never arrived) otherwise pins a connection slot, its buffers, and
	// its window forever. Closes are counted in Stats.IdleCloses. 0
	// disables.
	IdleTimeout time.Duration
	// MaxServerInflight caps requests admitted for execution across ALL
	// connections. Past it the server sheds: the request is answered
	// immediately with wire.StatusBusy (counted in Stats.Shed) and never
	// executes — bounding total queued work under a connection flood the
	// per-connection MaxInflight window cannot see. Shedding is a retry
	// invitation, not an error: nothing was applied, so clients may
	// safely retry any shed request after backing off. 0 disables.
	MaxServerInflight int
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.InlineBatch == 0 {
		o.InlineBatch = 16
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 64 << 10
	}
	if o.FlushPending <= 0 {
		o.FlushPending = 64
	}
	if o.FlushDelay <= 0 {
		o.FlushDelay = 200 * time.Microsecond
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = wire.MaxFrame
	}
	if o.MaxScan <= 0 || o.MaxScan > wire.MaxPairs {
		o.MaxScan = wire.MaxPairs
	}
}

// Stats is a snapshot of the server's counters. Ops counts requests
// answered; Errors the subset answered with StatusErr or StatusClosed;
// bytes include frame headers. The pipeline counters expose how the data
// path behaved: ReadBatches is ingest batches dispatched (Ops/ReadBatches
// is the mean ingest batch size), InlineOps and SteeredOps split requests
// by execution site, and Flushes is response write syscalls
// (Ops/Flushes is the mean coalescing factor). The failure counters track
// self-protection: Shed is requests answered StatusBusy at admission
// (never executed), IdleCloses is connections cut by Options.IdleTimeout,
// and Resets is connections that died mid-stream (reset, torn frame,
// corrupt frame, protocol error) rather than closing cleanly.
type Stats struct {
	Ops         uint64
	Errors      uint64
	BytesIn     uint64
	BytesOut    uint64
	ConnsLive   uint64
	ConnsTotal  uint64
	ReadBatches uint64
	InlineOps   uint64
	SteeredOps  uint64
	Flushes     uint64
	Shed        uint64
	IdleCloses  uint64
	Resets      uint64
}

// Server serves one store over any number of listeners.
type Server struct {
	st   *store.Store
	opts Options

	// epoch anchors mnow(), the int64 monotonic clock every stage
	// timestamp is measured on; met holds the always-on instrumentation
	// and reg renders it (server families plus the store's).
	epoch time.Time
	met   *serverMetrics
	reg   *metrics.Registry

	ops, errs             atomic.Uint64
	bytesIn, bytesOut     atomic.Uint64
	connsTotal            atomic.Uint64
	connsLive             atomic.Int64
	readBatches           atomic.Uint64
	inlineOps, steeredOps atomic.Uint64
	flushes               atomic.Uint64
	shed                  atomic.Uint64
	idleCloses            atomic.Uint64
	resets                atomic.Uint64
	admitted              atomic.Int64 // requests inside the MaxServerInflight window
	nextHome              atomic.Uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	shutdown  bool
	started   bool // workers running (see steer.go)

	rings    []chan task
	slabs    chan []wire.Request
	workerWG sync.WaitGroup

	wg sync.WaitGroup // one per connection handler
}

// New returns a server over st. The server does not own the store: close the
// store after Shutdown returns (requests racing a premature store Close are
// answered with wire.StatusClosed).
func New(st *store.Store, opts Options) *Server {
	opts.fill()
	s := &Server{
		st:        st,
		opts:      opts,
		epoch:     time.Now(),
		met:       newServerMetrics(opts.Workers),
		reg:       metrics.NewRegistry(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
		slabs:     make(chan []wire.Request, slabPoolSize),
	}
	s.registerMetrics(s.reg)
	st.RegisterMetrics(s.reg)
	return s
}

// Metrics returns the server's registry — every server family plus the
// store's, ready for Registry.Handler (Prometheus text format) or
// Registry.ExpvarFunc.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Stats snapshots the serve-side counters.
func (s *Server) Stats() Stats {
	live := s.connsLive.Load()
	if live < 0 {
		live = 0
	}
	return Stats{
		Ops:         s.ops.Load(),
		Errors:      s.errs.Load(),
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		ConnsLive:   uint64(live),
		ConnsTotal:  s.connsTotal.Load(),
		ReadBatches: s.readBatches.Load(),
		InlineOps:   s.inlineOps.Load(),
		SteeredOps:  s.steeredOps.Load(),
		Flushes:     s.flushes.Load(),
		Shed:        s.shed.Load(),
		IdleCloses:  s.idleCloses.Load(),
		Resets:      s.resets.Load(),
	}
}

// tryAdmit claims one slot of the global MaxServerInflight window (always
// succeeding when the cap is off). The caller must releaseAdmit exactly
// once after the request executes; shed requests never held a slot.
func (s *Server) tryAdmit() bool {
	limit := int64(s.opts.MaxServerInflight)
	if limit <= 0 {
		return true
	}
	for {
		cur := s.admitted.Load()
		if cur >= limit {
			return false
		}
		if s.admitted.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (s *Server) releaseAdmit() {
	if s.opts.MaxServerInflight > 0 {
		s.admitted.Add(-1)
	}
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown or
// Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown or Close, then returns
// ErrServerClosed. Serve may be called on several listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.startWorkersLocked()
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	var backoff time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrServerClosed
			}
			// Transient accept failures (fd exhaustion under heavy
			// client load, handshakes aborted before accept) must not
			// kill the accept loop: back off and retry.
			if retryableAccept(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("server: accept: %v; retrying in %v", err, backoff)
				time.Sleep(backoff)
				continue
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		backoff = 0
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go c.handle()
	}
}

// retryableAccept reports whether an Accept error is transient — the
// listener is fine and the next Accept can succeed — rather than fatal.
// The explicit classification replaces the deprecated net.Error.Temporary
// check: a closed listener is always fatal, and the retryable set is named
// errnos (per-connection handshake aborts and resource exhaustion that
// clears as load drains) instead of whatever Temporary happened to cover.
func retryableAccept(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	return errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.EINTR)
}

// Shutdown gracefully stops the server: it closes the listeners, stops
// reading new requests on every connection, waits for already-received
// requests to finish and their responses to flush, then closes the
// connections. If ctx expires first the remaining connections are aborted
// and ctx.Err() is returned. After Shutdown it is safe to Close the store.
func (s *Server) Shutdown(ctx context.Context) error {
	conns := s.stopAccepting()
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopWorkers()
		return nil
	case <-ctx.Done():
		s.abortConns()
		<-done
		s.stopWorkers()
		return ctx.Err()
	}
}

// Close aborts the server: listeners and connections are torn down without
// waiting for in-flight requests' responses to reach their clients.
func (s *Server) Close() error {
	s.stopAccepting()
	s.abortConns()
	s.wg.Wait()
	s.stopWorkers()
	return nil
}

// stopAccepting marks the server down, closes every listener, and returns a
// snapshot of the live connections.
func (s *Server) stopAccepting() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shutdown = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return conns
}

func (s *Server) abortConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}
