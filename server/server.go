// Package server serves a store.Store over TCP using the pmkv wire
// protocol (package wire): length-prefixed binary frames with client-chosen
// request ids, so one connection carries many in-flight requests and
// responses stream back as they complete.
//
// Each connection runs a small pipeline: a reader goroutine decodes frames
// into a bounded queue, Options.Workers worker goroutines — each owning one
// store.Session, the store's per-goroutine handle — execute requests, and a
// writer goroutine streams responses out, flushing whenever the outgoing
// queue drains. With more than one worker, responses may leave in a
// different order than requests arrived; the echoed id is the contract.
//
// Shutdown is graceful by default: Shutdown stops the listeners, lets every
// queued request finish, flushes the responses, and only then returns — so
// the caller can Close the store knowing no request is in flight. A session
// that races the store's Close anyway fails with store.ErrClosed, which the
// server reports as wire.StatusClosed rather than tearing the connection.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/store"
	"repro/wire"
)

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown or
// Close, mirroring net/http's contract.
var ErrServerClosed = errors.New("server: closed")

// Options configures a Server. The zero value is ready for use.
type Options struct {
	// Workers is the number of request-processing goroutines per
	// connection, each owning one store.Session. One worker keeps
	// per-connection requests strictly ordered; more workers let one
	// connection's requests overlap (responses are matched by id).
	// Default 1.
	Workers int
	// MaxFrame caps an incoming frame body in bytes. Default
	// wire.MaxFrame.
	MaxFrame uint32
	// MaxScan caps the pairs returned by one Scan request, bounding the
	// response frame. Requests asking for more are truncated to this.
	// Default wire.MaxPairs.
	MaxScan int
	// Logf, when set, receives connection-level diagnostics (accept and
	// protocol failures). Default: silent.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = wire.MaxFrame
	}
	if o.MaxScan <= 0 || o.MaxScan > wire.MaxPairs {
		o.MaxScan = wire.MaxPairs
	}
}

// Stats is a snapshot of the server's counters. Ops counts requests
// answered; Errors the subset answered with StatusErr or StatusClosed;
// bytes include frame headers.
type Stats struct {
	Ops        uint64
	Errors     uint64
	BytesIn    uint64
	BytesOut   uint64
	ConnsLive  uint64
	ConnsTotal uint64
}

// Server serves one store over any number of listeners.
type Server struct {
	st   *store.Store
	opts Options

	ops, errs         atomic.Uint64
	bytesIn, bytesOut atomic.Uint64
	connsTotal        atomic.Uint64
	connsLive         atomic.Int64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	shutdown  bool

	wg sync.WaitGroup // one per connection handler
}

// New returns a server over st. The server does not own the store: close the
// store after Shutdown returns (requests racing a premature store Close are
// answered with wire.StatusClosed).
func New(st *store.Store, opts Options) *Server {
	opts.fill()
	return &Server{
		st:        st,
		opts:      opts,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Stats snapshots the serve-side counters.
func (s *Server) Stats() Stats {
	live := s.connsLive.Load()
	if live < 0 {
		live = 0
	}
	return Stats{
		Ops:        s.ops.Load(),
		Errors:     s.errs.Load(),
		BytesIn:    s.bytesIn.Load(),
		BytesOut:   s.bytesOut.Load(),
		ConnsLive:  uint64(live),
		ConnsTotal: s.connsTotal.Load(),
	}
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown or
// Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown or Close, then returns
// ErrServerClosed. Serve may be called on several listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()

	var backoff time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrServerClosed
			}
			// Transient accept failures (fd exhaustion under heavy
			// client load) must not kill the accept loop: back off and
			// retry, the way net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() { //nolint:staticcheck // net/http's accept-retry idiom
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("server: accept: %v; retrying in %v", err, backoff)
				time.Sleep(backoff)
				continue
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		backoff = 0
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go c.handle()
	}
}

// Shutdown gracefully stops the server: it closes the listeners, stops
// reading new requests on every connection, waits for already-received
// requests to finish and their responses to flush, then closes the
// connections. If ctx expires first the remaining connections are aborted
// and ctx.Err() is returned. After Shutdown it is safe to Close the store.
func (s *Server) Shutdown(ctx context.Context) error {
	conns := s.stopAccepting()
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abortConns()
		<-done
		return ctx.Err()
	}
}

// Close aborts the server: listeners and connections are torn down without
// waiting for in-flight requests' responses to reach their clients.
func (s *Server) Close() error {
	s.stopAccepting()
	s.abortConns()
	s.wg.Wait()
	return nil
}

// stopAccepting marks the server down, closes every listener, and returns a
// snapshot of the live connections.
func (s *Server) stopAccepting() []*conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shutdown = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return conns
}

func (s *Server) abortConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}
