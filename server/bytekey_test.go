package server

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/client"
	"repro/store"
	"repro/wire"
)

// End-to-end coverage of the byte-string-keyed ops: client → wire →
// server → store → vlog and back, including the adversarial shapes the
// key layout has to survive (shared 8-byte prefixes, 1 KiB keys,
// pagination cursors).

// TestByteKeyCapsAligned pins the store's byte-key limits to the wire's:
// the store must never accept a key or value the protocol cannot serve.
func TestByteKeyCapsAligned(t *testing.T) {
	if store.MaxKey != wire.MaxKey {
		t.Fatalf("store.MaxKey %d != wire.MaxKey %d: embedded stores could hold unservable keys",
			store.MaxKey, wire.MaxKey)
	}
	if store.MaxKVValue != wire.MaxKValue {
		t.Fatalf("store.MaxKVValue %d != wire.MaxKValue %d: embedded stores could hold unservable values",
			store.MaxKVValue, wire.MaxKValue)
	}
}

func TestByteKeyRoundTrip(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(7))
	want := map[string][]byte{}
	key := func(i int) []byte {
		switch i % 4 {
		case 0: // short unique
			return []byte(fmt.Sprintf("k%04d", i))
		case 1: // shared 8-byte prefix, differ past it
			return []byte(fmt.Sprintf("sameprefix-%04d", i))
		case 2: // binary, leading zero byte
			return append([]byte{0x00, 0xff}, byte(i), byte(i>>8))
		default: // long key
			k := bytes.Repeat([]byte{byte(i)}, 100+i%200)
			k[0] = 'L' // keep it distinct from the binary class
			return k
		}
	}
	for i := 0; i < 300; i++ {
		k := key(i)
		v := make([]byte, rng.Intn(2000))
		rng.Read(v)
		if err := c.PutKV(k, v); err != nil {
			t.Fatalf("PutKV %q: %v", k, err)
		}
		want[string(k)] = v
	}
	for k, v := range want {
		got, ok, err := c.GetKV([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %q: ok=%v err=%v (%d bytes, want %d)", k, ok, err, len(got), len(v))
		}
	}
	// Miss, empty value, delete.
	if _, ok, err := c.GetKV([]byte("never written")); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	if err := c.PutKV([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := c.GetKV([]byte("empty")); err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty value: %q ok=%v err=%v", got, ok, err)
	}
	if ok, err := c.DeleteKV([]byte("empty")); !ok || err != nil {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := c.GetKV([]byte("empty")); ok {
		t.Fatal("key survives delete")
	}
	if ok, err := c.DeleteKV([]byte("empty")); ok || err != nil {
		t.Fatalf("re-delete: ok=%v err=%v", ok, err)
	}
}

// TestByteKeyLimitsOverWire drives the extreme shapes through the full
// stack: a 1 KiB (MaxKey) key, a MaxKValue value under that key, and the
// client-side encode rejections just past both caps.
func TestByteKeyLimitsOverWire(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	maxKey := bytes.Repeat([]byte{0xee}, wire.MaxKey)
	maxVal := bytes.Repeat([]byte{0x5a}, wire.MaxKValue)
	if err := c.PutKV(maxKey, maxVal); err != nil {
		t.Fatalf("max key+value PutKV: %v", err)
	}
	got, ok, err := c.GetKV(maxKey)
	if err != nil || !ok || !bytes.Equal(got, maxVal) {
		t.Fatalf("max key+value GetKV: ok=%v err=%v len=%d", ok, err, len(got))
	}
	// The max-shaped pair must also survive a scan page.
	pairs, err := c.ScanKV(maxKey, maxKey, 0)
	if err != nil || len(pairs) != 1 || !bytes.Equal(pairs[0].Key, maxKey) || !bytes.Equal(pairs[0].Val, maxVal) {
		t.Fatalf("max pair ScanKV: %d pairs err=%v", len(pairs), err)
	}

	// Just past the caps: rejected at encode time, connection stays up.
	if err := c.PutKV(append(maxKey, 0xee), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := c.PutKV([]byte("k"), make([]byte, wire.MaxKValue+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := c.PutKV(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, ok, err := c.GetKV(maxKey); err != nil || !ok {
		t.Fatalf("connection unusable after encode rejections: ok=%v err=%v", ok, err)
	}
}

func TestByteKeyScanPagination(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 400 keys, every pair of neighbours sharing an 8-byte prefix, plus a
	// deliberate empty-adjacent pair (k and k+"\x00") the cursor must split
	// correctly.
	var keys [][]byte
	for i := 0; i < 400; i++ {
		keys = append(keys, []byte(fmt.Sprintf("page-%03d", i/2)+string(rune('a'+i%2))))
	}
	keys = append(keys, []byte("page-edge"), []byte("page-edge\x00"))
	for i, k := range keys {
		if err := c.PutKV(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	lo := []byte("page-")
	for {
		pairs, err := c.ScanKV(lo, []byte("page-\xff"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			break
		}
		for i, p := range pairs {
			if i > 0 && bytes.Compare(pairs[i-1].Key, p.Key) >= 0 {
				t.Fatalf("scan out of order at %q", p.Key)
			}
			got = append(got, append([]byte(nil), p.Key...))
		}
		last := pairs[len(pairs)-1].Key
		lo = append(append([]byte(nil), last...), 0x00)
	}
	if len(got) != len(keys) {
		t.Fatalf("paged scan visited %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("merged pages out of order at %d", i)
		}
	}
}

// TestByteKeyScanByteBudget stores values big enough that the response
// byte budget, not the pair cap, ends each page; paging must still visit
// every key exactly once.
func TestByteKeyScanByteBudget(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	big := make([]byte, 64<<10) // 40 x 64 KiB >> one frame
	for i := range big {
		big[i] = byte(i * 7)
	}
	for i := 0; i < n; i++ {
		if err := c.PutKV([]byte(fmt.Sprintf("budget-%02d", i)), big); err != nil {
			t.Fatal(err)
		}
	}
	seen, pages := 0, 0
	lo := []byte("budget-")
	for {
		pairs, err := c.ScanKV(lo, []byte("budget-\xff"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			break
		}
		pages++
		for _, p := range pairs {
			if !bytes.Equal(p.Val, big) {
				t.Fatalf("byte-budget scan corrupted value at key %q", p.Key)
			}
		}
		seen += len(pairs)
		lo = append(append([]byte(nil), pairs[len(pairs)-1].Key...), 0x00)
	}
	if seen != n {
		t.Fatalf("budgeted scan visited %d keys, want %d", seen, n)
	}
	if pages < 2 {
		t.Fatalf("byte budget never split the pages (%d pages for %d x %d KiB)", pages, n, len(big)>>10)
	}
}

func TestByteKeyPipelined(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{Workers: 4})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	key := func(i int) []byte { return []byte(fmt.Sprintf("pipe-%04d", i)) }
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, i%97+1) }
	calls := make([]*client.Call, 0, n)
	for i := 0; i < n; i++ {
		calls = append(calls, c.PutKVAsync(key(i), val(i)))
	}
	for _, call := range calls {
		if err := call.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	gets := make([]*client.Call, 0, n)
	for i := 0; i < n; i++ {
		gets = append(gets, c.GetKVAsync(key(i)))
	}
	for i, call := range gets {
		if err := call.Wait(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(call.Resp.VVal, val(i)) {
			t.Fatalf("pipelined GetK %d mismatch", i)
		}
	}
}

// TestByteKeyMixedAPIRejected drives a uint64-API write and a byte-key
// read whose packed prefix collides with it: the store must refuse with a
// clear error rather than misparse the fixed-width record as a bucket.
func TestByteKeyMixedAPIRejected(t *testing.T) {
	ts := startServer(t, store.Options{Shards: 1}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key := []byte("mixedkey") // exactly 8 bytes: its packed prefix is the word below
	word := store.PackPrefix(key)
	if err := c.PutBytes(word, []byte("written fixed-width")); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.GetKV(key)
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("GetKV of uint64-API prefix: err = %v, want RemoteError", err)
	}
	// The varlen API still reads its own record.
	if v, ok, err := c.GetBytes(word); err != nil || !ok || !bytes.Equal(v, []byte("written fixed-width")) {
		t.Fatalf("GetBytes after GetKV attempt: %q %v %v", v, ok, err)
	}
}
