package server

import (
	"repro/wire"
)

// The steered data path: instead of per-connection worker pools, the server
// runs Options.Workers request workers for its whole lifetime, each owning
// one store.Session and draining one ring. Every connection is assigned a
// home ring at accept time (round-robin), and its reader hands whole
// ingest batches — []wire.Request slabs — to that ring, so many
// lightly-loaded connections aggregate onto the same hot workers and the
// per-request cost of the reader→worker handoff is amortized across a
// batch.
//
// Ordering invariant: a connection's requests execute in arrival order.
// The reader emits batches in order, a ring is FIFO, exactly one worker
// drains it, and the worker finishes a batch before taking the next — so
// steering preserves the per-connection (and therefore per-key) execution
// order. The reader's inline fast path keeps the same invariant by only
// executing a batch itself when the connection has zero steered requests
// outstanding (conn.steered, decremented by the worker only after the
// batch's last response is queued).
//
// Workers never block on a slow connection: respCh has space for every
// in-flight request by construction (see conn.credits), so a worker's send
// always finds room and a stalled client can only stall itself.
const (
	// ringDepth bounds the batches queued per worker. Readers block when a
	// ring fills; since workers never block, rings always drain.
	ringDepth = 256
	// maxIngest caps the requests decoded per reader wakeup, bounding the
	// slab a single connection can pin and keeping batch latency flat.
	maxIngest = 64
	// slabPoolSize bounds the recycled request slabs kept across batches.
	slabPoolSize = 64
)

// task is one connection's ingest batch, executed by its home worker. t0
// is the batch's ingest time on the server's monotonic clock; the gap to
// execution start is each request's queue-wait stage.
type task struct {
	c    *conn
	reqs []wire.Request
	t0   int64
}

// startWorkersLocked spins up the worker set and rings on first use.
// Callers hold s.mu and have already checked s.shutdown.
func (s *Server) startWorkersLocked() {
	if s.started {
		return
	}
	s.started = true
	s.rings = make([]chan task, s.opts.Workers)
	for i := range s.rings {
		s.rings[i] = make(chan task, ringDepth)
		s.workerWG.Add(1)
		go s.workerLoop(i, s.rings[i])
	}
}

// stopWorkers closes the rings and joins the workers. It must only run
// after every connection handler has exited (no reader can be mid-send),
// and it is idempotent so Shutdown and Close can both call it.
func (s *Server) stopWorkers() {
	s.mu.Lock()
	started := s.started
	s.started = false
	rings := s.rings
	s.mu.Unlock()
	if !started {
		return
	}
	for _, r := range rings {
		close(r)
	}
	s.workerWG.Wait()
}

// workerLoop drains one ring: execute the batch in order, queue each
// response on the owning connection (never blocking — see conn.credits),
// then release the batch's steered count and recycle the slab. wid is the
// worker's index, the stripe hint for the per-opcode counters.
func (s *Server) workerLoop(wid int, ring chan task) {
	defer s.workerWG.Done()
	ss := s.st.NewSession()
	defer ss.Close()
	var sctr uint32 // this worker's stage-latency sample counter
	for t := range ring {
		c := t.c
		for i := range t.reqs {
			c.respCh <- c.executeOne(ss, &t.reqs[i], t.t0, wid, &sctr)
		}
		c.steered.Add(-int64(len(t.reqs)))
		s.putSlab(t.reqs)
	}
}

// takeSlab fetches a recycled request slab or makes a fresh one.
func (s *Server) takeSlab() []wire.Request {
	select {
	case slab := <-s.slabs:
		return slab[:0]
	default:
		return make([]wire.Request, 0, maxIngest)
	}
}

// putSlab recycles a drained slab. Requests can pin PutBatch pair slices
// and PutV values, so the slab is cleared before pooling; a full pool just
// drops the slab to the GC.
func (s *Server) putSlab(slab []wire.Request) {
	clear(slab)
	select {
	case s.slabs <- slab[:0]:
	default:
	}
}
