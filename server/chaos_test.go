package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/netfault"
	"repro/store"
	"repro/wire"
)

// chaosServer stands up a server whose listener injects faults into every
// accepted connection. Unlike startServer it leaves store teardown to the
// test, so the test can Reopen the pools afterwards.
func chaosServer(t *testing.T, faults netfault.Options) (st *store.Store, srv *Server, addr string) {
	t.Helper()
	st, err := store.Open(store.Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv = New(st, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(netfault.WrapListener(ln, faults)) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return st, srv, ln.Addr().String()
}

// TestChaosNoLostAckedWrites is the core torture test: a server whose
// network stalls, fragments, corrupts, and resets connections mid-frame
// serves writers that reconnect and push on. The invariant under all of it:
// a write the client saw acknowledged is durable — after draining the
// server and reopening the store from its pools, every acked key resolves
// to its exact value. (Un-acked writes may or may not have landed; that is
// the client's known-unknown, not a durability hole.)
func TestChaosNoLostAckedWrites(t *testing.T) {
	// PartialProb 1.0 makes the fault schedule byte-driven: every read is
	// fragmented (≤4KiB per op, see netfault's fragment cap), so a burst's
	// I/O op count scales with its byte volume no matter how the kernel or
	// bufio happens to coalesce — and ResetAfter then fires mid-burst on
	// every connection instead of depending on buffer luck.
	st, srv, addr := chaosServer(t, netfault.Options{
		Seed:        1234,
		PartialProb: 1.0,
		StallEvery:  97,
		StallFor:    2 * time.Millisecond,
		CorruptProb: 0.01,
		ResetAfter:  100, // ~200KiB in: every connection dies mid-burst
	})

	// 1 KiB values keyed by content: enough byte volume per burst that the
	// per-I/O-op fault schedule (resets, corruption) fires reliably, and
	// the value log — not just the tree — is under test.
	bval := func(k uint64) []byte {
		v := make([]byte, 1024)
		for i := range v {
			v[i] = byte(uint64(i) * k)
		}
		return v
	}
	acked := map[uint64]struct{}{}
	var key uint64
	failed := 0
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) && len(acked) < 2000 {
		c, err := client.Dial(addr, client.Options{CallTimeout: 3 * time.Second})
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var calls []*client.Call
		var keys []uint64
		for i := 0; i < 300; i++ {
			key++
			calls = append(calls, c.PutBytesAsync(key, bval(key)))
			keys = append(keys, key)
		}
		for i, call := range calls {
			if call.Wait() == nil {
				acked[keys[i]] = struct{}{}
			} else {
				failed++
			}
		}
		c.Close()
	}
	if len(acked) < 100 {
		t.Fatalf("only %d writes acked in 8s; the fault schedule starved the test", len(acked))
	}
	if failed == 0 {
		t.Fatal("no write ever failed; the fault schedule never fired and the test proved nothing")
	}
	t.Logf("%d writes acked, %d failed through the hostile network (last key %d)",
		len(acked), failed, key)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: %v", err)
	}
	pools := st.Pools()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.Reopen(pools, store.Options{})
	if err != nil {
		t.Fatalf("Reopen after chaos run: %v", err)
	}
	defer re.Close()
	ss := re.NewSession()
	defer ss.Close()
	for k := range acked {
		v, ok, err := ss.GetBytes(k, nil)
		if err != nil || !ok || !bytes.Equal(v, bval(k)) {
			t.Fatalf("acked write lost or damaged: key %d (ok=%v, err=%v)", k, ok, err)
		}
	}
}

// TestChaosClientSideFaults puts the fault layer on the client's own
// transport via the Dial hook and pins three promises: calls never hang
// (CallTimeout and terminal conn errors bound every wait), every failure is
// classified Retryable (the server answered nothing wrongly), and response
// corruption is always caught at frame decode — a successful Get NEVER
// carries a wrong value, and at least one connection dies with the
// checksum error.
func TestChaosClientSideFaults(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})

	clean, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 300
	for k := uint64(1); k <= keys; k++ {
		if err := clean.Put(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	clean.Close()

	var seed atomic.Int64
	seed.Store(4242)
	chaosDial := func(addr string, timeout time.Duration) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return netfault.WrapConn(nc, netfault.Options{
			Seed:        seed.Add(1),
			PartialProb: 0.3,
			StallEvery:  41,
			StallFor:    time.Millisecond,
			CorruptProb: 0.05,
			ResetAfter:  500,
		}), nil
	}

	sawCorrupt := false
	deadline := time.Now().Add(8 * time.Second)
	for round := 0; time.Now().Before(deadline); round++ {
		c, err := client.Dial(ts.addr, client.Options{
			CallTimeout: time.Second,
			Dial:        chaosDial,
		})
		if err != nil {
			continue
		}
		calls := make([]*client.Call, keys)
		for k := uint64(1); k <= keys; k++ {
			calls[k-1] = c.GetAsync(k)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, call := range calls {
				call.Wait()
			}
		}()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("pending calls hung on a faulty connection")
		}
		for i, call := range calls {
			k := uint64(i + 1)
			switch {
			case call.Err == nil:
				if call.Resp.Status != wire.StatusOK || call.Resp.Val != k*7 {
					t.Fatalf("corruption slipped past the frame checksum: Get(%d) = status %v val %d",
						k, call.Resp.Status, call.Resp.Val)
				}
			case !client.Retryable(call.Err):
				t.Fatalf("Get(%d) failed non-retryably under transport faults: %v", k, call.Err)
			}
		}
		if err := c.Err(); err != nil && errors.Is(err, wire.ErrMalformed) {
			sawCorrupt = true
		}
		c.Close()
		if sawCorrupt && round >= 3 {
			break
		}
	}
	if !sawCorrupt {
		t.Fatal("no connection ever died of frame corruption; CorruptProb=0.05 schedule never fired?")
	}
}

// TestServerDeathFailsPendingCalls kills the server while a deep pipeline
// of calls is in flight and asserts the client contract on the wreckage:
// every pending Call completes (with nil or a terminal error) well inside
// the call deadline, and afterwards the client side leaks no goroutines.
func TestServerDeathFailsPendingCalls(t *testing.T) {
	before := runtime.NumGoroutine()

	st, err := store.Open(store.Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String(), client.Options{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	calls := make([]*client.Call, n)
	for i := 0; i < n; i++ {
		calls[i] = c.PutAsync(uint64(i+1), uint64(i+1))
	}
	// Abortive close mid-pipeline: no drain, connections just die.
	srv.Close()
	if err := <-done; err != nil && !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve: %v", err)
	}

	completed := make(chan struct{})
	go func() {
		defer close(completed)
		for _, call := range calls {
			call.Wait()
		}
	}()
	select {
	case <-completed:
	case <-time.After(10 * time.Second):
		t.Fatal("pending calls did not complete within the deadline after server death")
	}
	failed := 0
	for _, call := range calls {
		if call.Err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("server died mid-pipeline yet every call succeeded; the abort never happened")
	}
	t.Logf("%d/%d pending calls failed terminally", failed, n)

	c.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything above joined its goroutines; give stragglers (timer
	// callbacks, netpoller wakeups) a moment, then require the count back
	// at (or below) the baseline plus slack.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after server death: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosNoLostAckedByteKeys is the byte-key torture variant of
// TestChaosNoLostAckedWrites: writers push prefix-colliding byte-string
// keys through a network that fragments, stalls, corrupts, and resets
// connections mid-frame, reconnecting and pushing on. The invariant is
// identical — an acked PutKV survives server drain and store Reopen
// byte-exact — but the write path under test is the bucket rewrite
// (read-modify-write of a shared per-prefix record), so a torn rewrite or
// a lost colliding sibling would surface here even if single-key puts are
// solid.
func TestChaosNoLostAckedByteKeys(t *testing.T) {
	st, srv, addr := chaosServer(t, netfault.Options{
		Seed:        4321,
		PartialProb: 1.0,
		StallEvery:  97,
		StallFor:    2 * time.Millisecond,
		CorruptProb: 0.01,
		ResetAfter:  100,
	})

	// Key n lands in collision family n/3: every bucket holds up to three
	// keys, so most acked writes rewrote a record other keys live in.
	bkey := func(n uint64) []byte {
		return []byte(fmt.Sprintf("chaosfam-%05d-%c", n/3, 'a'+n%3))
	}
	bval := func(n uint64) []byte {
		v := make([]byte, 700)
		for i := range v {
			v[i] = byte(uint64(i)*n + n>>8)
		}
		return v
	}
	acked := map[uint64]struct{}{}
	var key uint64
	failed := 0
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) && len(acked) < 2000 {
		c, err := client.Dial(addr, client.Options{CallTimeout: 3 * time.Second})
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var calls []*client.Call
		var keys []uint64
		for i := 0; i < 300; i++ {
			key++
			calls = append(calls, c.PutKVAsync(bkey(key), bval(key)))
			keys = append(keys, key)
		}
		for i, call := range calls {
			if call.Wait() == nil {
				acked[keys[i]] = struct{}{}
			} else {
				failed++
			}
		}
		c.Close()
	}
	if len(acked) < 100 {
		t.Fatalf("only %d writes acked in 8s; the fault schedule starved the test", len(acked))
	}
	if failed == 0 {
		t.Fatal("no write ever failed; the fault schedule never fired and the test proved nothing")
	}
	t.Logf("%d byte-key writes acked, %d failed through the hostile network", len(acked), failed)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: %v", err)
	}
	pools := st.Pools()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.Reopen(pools, store.Options{})
	if err != nil {
		t.Fatalf("Reopen after chaos run: %v", err)
	}
	defer re.Close()
	ss := re.NewSession()
	defer ss.Close()
	for k := range acked {
		v, ok, err := ss.GetKV(bkey(k), nil)
		if err != nil || !ok || !bytes.Equal(v, bval(k)) {
			t.Fatalf("acked byte-key write lost or damaged: %q (ok=%v, err=%v)", bkey(k), ok, err)
		}
	}
	// The reopened tree must also still scan coherently: every key seen is
	// well-formed and in order (acked ⊆ scanned is implied by the gets).
	var prev []byte
	n := 0
	err = ss.ScanKV(nil, nil, 0, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("post-chaos scan out of order at %q", k)
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if err != nil || n < len(acked)/3 {
		t.Fatalf("post-chaos scan: %d keys, err=%v", n, err)
	}
}
