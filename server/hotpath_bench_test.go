package server

import (
	"testing"

	"repro/store"
	"repro/wire"
)

// The serve+encode hot path — what one worker plus the writer do per request,
// minus the socket — must stay allocation-free in steady state for Get and
// Scan: that is what keeps the server's read throughput GC-quiet.

func newServePath(tb testing.TB, nKeys int) (*conn, *store.Session, []uint64) {
	tb.Helper()
	st, err := store.Open(store.Options{Shards: 4, ShardSize: 64 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.Close() })
	ss := st.NewSession()
	tb.Cleanup(ss.Close)
	keys := make([]uint64, nKeys)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 1
		if err := ss.Put(keys[i], keys[i]^0xbeef); err != nil {
			tb.Fatal(err)
		}
	}
	s := New(st, Options{})
	return newConn(s, nil), ss, keys
}

// serveEncode runs one request through executeOne — serve plus the stage
// instrumentation, so the alloc pins cover the metrics record path — and
// the writer's encode step, recycling the pooled buffers the way writeLoop
// does.
func serveEncode(c *conn, ss *store.Session, req *wire.Request, buf []byte) ([]byte, wire.Status) {
	resp := c.executeOne(ss, req, c.srv.mnow(), 0, &c.sampleCtr)
	buf, err := wire.AppendResponse(buf[:0], &resp.Response)
	if err != nil {
		panic(err)
	}
	c.recycleRespBufs(&resp)
	return buf, resp.Status
}

func BenchmarkServeGet(b *testing.B) {
	c, ss, keys := newServePath(b, 20000)
	req := wire.Request{ID: 1, Op: wire.OpGet}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Key = keys[i%len(keys)]
		var st wire.Status
		buf, st = serveEncode(c, ss, &req, buf)
		if st != wire.StatusOK {
			b.Fatalf("status %v", st)
		}
	}
}

func BenchmarkServeScan(b *testing.B) {
	c, ss, _ := newServePath(b, 20000)
	req := wire.Request{ID: 1, Op: wire.OpScan, Lo: 0, Hi: ^uint64(0), Max: 100}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st wire.Status
		buf, st = serveEncode(c, ss, &req, buf)
		if st != wire.StatusOK {
			b.Fatalf("status %v", st)
		}
	}
}

// newServePathV preloads varlen values for the varlen serve benchmarks.
func newServePathV(tb testing.TB, nKeys, valSize int) (*conn, *store.Session, []uint64) {
	tb.Helper()
	st, err := store.Open(store.Options{Shards: 4, ShardSize: 64 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.Close() })
	ss := st.NewSession()
	tb.Cleanup(ss.Close)
	keys := make([]uint64, nKeys)
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 1
		if err := ss.PutBytes(keys[i], val); err != nil {
			tb.Fatal(err)
		}
	}
	s := New(st, Options{})
	return newConn(s, nil), ss, keys
}

func BenchmarkServeGetV(b *testing.B) {
	c, ss, keys := newServePathV(b, 20000, 128)
	req := wire.Request{ID: 1, Op: wire.OpGetV}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Key = keys[i%len(keys)]
		var st wire.Status
		buf, st = serveEncode(c, ss, &req, buf)
		if st != wire.StatusOK {
			b.Fatalf("status %v", st)
		}
	}
}

func BenchmarkServePutV(b *testing.B) {
	c, ss, keys := newServePathV(b, 20000, 128)
	val := make([]byte, 128)
	req := wire.Request{ID: 1, Op: wire.OpPutV, VVal: val}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Key = keys[i%len(keys)]
		var st wire.Status
		buf, st = serveEncode(c, ss, &req, buf)
		if st != wire.StatusOK {
			b.Fatalf("status %v", st)
		}
	}
}

func BenchmarkServeScanV(b *testing.B) {
	c, ss, _ := newServePathV(b, 20000, 128)
	req := wire.Request{ID: 1, Op: wire.OpScanV, Lo: 0, Hi: ^uint64(0), Max: 100}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st wire.Status
		buf, st = serveEncode(c, ss, &req, buf)
		if st != wire.StatusOK {
			b.Fatalf("status %v", st)
		}
	}
}

// TestServeVarlenAllocDiscipline bounds the varlen serve+encode path: all
// buffers (value arena, pair slices, frame) are pooled, so the only
// steady-state allocations allowed are the small constant ones the scan
// callback needs — never per-byte or per-pair costs. GetV, whose path has
// no closure, must stay allocation-free like the fixed ops.
func TestServeVarlenAllocDiscipline(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is checked in non-race runs")
	}
	c, ss, keys := newServePathV(t, 5000, 256)
	var buf []byte

	get := wire.Request{ID: 1, Op: wire.OpGetV, Key: keys[0]}
	buf, _ = serveEncode(c, ss, &get, buf) // warm-up: sizes buffers
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		get.Key = keys[i%len(keys)]
		i++
		var st wire.Status
		buf, st = serveEncode(c, ss, &get, buf)
		if st != wire.StatusOK {
			t.Fatalf("status %v", st)
		}
	}); allocs != 0 {
		t.Errorf("GetV serve+encode allocs/op = %v, want 0", allocs)
	}

	scan := wire.Request{ID: 2, Op: wire.OpScanV, Lo: 0, Hi: ^uint64(0), Max: 64}
	buf, _ = serveEncode(c, ss, &scan, buf) // warm-up
	if allocs := testing.AllocsPerRun(100, func() {
		var st wire.Status
		buf, st = serveEncode(c, ss, &scan, buf)
		if st != wire.StatusOK {
			t.Fatalf("status %v", st)
		}
	}); allocs > 3 {
		t.Errorf("ScanV serve+encode allocs/op = %v, want <= 3 (constant, not per-pair)", allocs)
	}
}

// TestServeReadPathAllocs is the regression gate on the zero-allocation
// contract: steady-state Get and Scan must not touch the heap anywhere in
// serve+encode.
func TestServeReadPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is checked in non-race runs")
	}
	c, ss, keys := newServePath(t, 5000)
	var buf []byte

	get := wire.Request{ID: 1, Op: wire.OpGet, Key: keys[0]}
	buf, _ = serveEncode(c, ss, &get, buf) // warm-up: sizes buffers
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		get.Key = keys[i%len(keys)]
		i++
		var st wire.Status
		buf, st = serveEncode(c, ss, &get, buf)
		if st != wire.StatusOK {
			t.Fatalf("status %v", st)
		}
	}); allocs != 0 {
		t.Errorf("Get serve+encode allocs/op = %v, want 0", allocs)
	}

	scan := wire.Request{ID: 2, Op: wire.OpScan, Lo: 0, Hi: ^uint64(0), Max: 128}
	buf, _ = serveEncode(c, ss, &scan, buf) // warm-up
	if allocs := testing.AllocsPerRun(100, func() {
		var st wire.Status
		buf, st = serveEncode(c, ss, &scan, buf)
		if st != wire.StatusOK {
			t.Fatalf("status %v", st)
		}
	}); allocs != 0 {
		t.Errorf("Scan serve+encode allocs/op = %v, want 0", allocs)
	}
}
