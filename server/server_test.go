package server

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/store"
	"repro/wire"
)

// testServer stands up a store and a server on a loopback listener.
type testServer struct {
	st   *store.Store
	srv  *Server
	addr string
	done chan error
}

func startServer(t *testing.T, sopts store.Options, opts Options) *testServer {
	t.Helper()
	if sopts.Shards == 0 {
		sopts.Shards = 4
	}
	if sopts.ShardSize == 0 {
		sopts.ShardSize = 32 << 20
	}
	st, err := store.Open(sopts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &testServer{st: st, srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { ts.done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		st.Close()
		if err := <-ts.done; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return ts
}

func TestRoundTrip(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put(42, 1000); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(42)
	if err != nil || !ok || v != 1000 {
		t.Fatalf("Get(42) = (%d,%v,%v), want (1000,true,nil)", v, ok, err)
	}
	if _, ok, err := c.Get(43); err != nil || ok {
		t.Fatalf("Get(43) hit on absent key (err=%v)", err)
	}
	if ok, err := c.Delete(42); err != nil || !ok {
		t.Fatalf("Delete(42) = (%v,%v)", ok, err)
	}
	if ok, err := c.Delete(42); err != nil || ok {
		t.Fatalf("double Delete(42) = (%v,%v)", ok, err)
	}

	// Batch + ordered scan across shards.
	var pairs []client.KV
	for i := uint64(1); i <= 500; i++ {
		pairs = append(pairs, client.KV{Key: i * 3, Val: i})
	}
	if err := c.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	got, err := c.Scan(0, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("scan returned %d pairs, want 500", len(got))
	}
	for i, kv := range got {
		if kv.Key != uint64(i+1)*3 || kv.Val != uint64(i+1) {
			t.Fatalf("scan[%d] = %+v, want key %d val %d", i, kv, (i+1)*3, i+1)
		}
	}
	// Scan cap truncates.
	capped, err := c.Scan(0, ^uint64(0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 10 {
		t.Fatalf("capped scan returned %d pairs, want 10", len(capped))
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops == 0 || stats.ConnsLive == 0 || stats.BytesIn == 0 || stats.BytesOut == 0 {
		t.Fatalf("implausible server stats: %+v", stats)
	}
}

// TestPipelined issues a window of async calls before waiting on any of
// them, so correctness of the id-matching (not just FIFO luck) is what
// passes the test — the multi-worker server answers out of order.
func TestPipelined(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{Workers: 4})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 2000
	puts := make([]*client.Call, n)
	for i := 0; i < n; i++ {
		puts[i] = c.PutAsync(uint64(i+1), uint64(i)*7)
	}
	for i, call := range puts {
		if err := call.Wait(); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	gets := make([]*client.Call, n)
	for i := 0; i < n; i++ {
		gets[i] = c.GetAsync(uint64(i + 1))
	}
	for i, call := range gets {
		if err := call.Wait(); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if call.Resp.Status != wire.StatusOK || call.Resp.Val != uint64(i)*7 {
			t.Fatalf("get %d: status %v val %d, want OK %d",
				i, call.Resp.Status, call.Resp.Val, uint64(i)*7)
		}
	}
}

// TestConcurrentClients drives many goroutines over a small connection pool
// and several independent connections at once (run under -race in CI).
func TestConcurrentClients(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{Workers: 2})
	pool, err := client.DialPool(ts.addr, 4, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			base := uint64(g) << 32
			for i := uint64(0); i < perG; i++ {
				k := base | i
				if err := pool.Put(k, k^0xbeef); err != nil {
					t.Errorf("Put(%d): %v", k, err)
					return
				}
				// Read-your-writes through any pooled connection:
				// the server acked the put before replying.
				if v, ok, err := pool.Get(k); err != nil || !ok || v != k^0xbeef {
					t.Errorf("Get(%d) = (%d,%v,%v)", k, v, ok, err)
					return
				}
				if rng.Intn(8) == 0 {
					if _, err := pool.Delete(k); err != nil {
						t.Errorf("Delete(%d): %v", k, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stats, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ConnsTotal < 4 {
		t.Fatalf("ConnsTotal = %d, want >= 4", stats.ConnsTotal)
	}
}

// TestGracefulShutdown checks the drain contract end to end: every put the
// server acknowledged before Shutdown must be durable in the store after
// Shutdown returns, and a following Store.Close must not race anything.
func TestGracefulShutdown(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{Workers: 2})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A pipelined burst, some of which will be in flight when Shutdown
	// lands.
	const n = 3000
	calls := make([]*client.Call, n)
	for i := 0; i < n; i++ {
		calls[i] = c.PutAsync(uint64(i+1), uint64(i+1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	acked := 0
	for _, call := range calls {
		if call.Wait() == nil {
			acked++
		}
	}
	t.Logf("%d/%d puts acknowledged across the shutdown", acked, n)

	// The store is all ours now: every acked put must be present. (Puts
	// the server never read off the socket are simply absent; puts it
	// answered are durable.)
	ss := ts.st.NewSession()
	defer ss.Close()
	count, err := ss.Len()
	if err != nil {
		t.Fatal(err)
	}
	if count < acked {
		t.Fatalf("store holds %d keys, but %d puts were acknowledged", count, acked)
	}
	// New connections must be refused.
	if c2, err := client.Dial(ts.addr, client.Options{}); err == nil {
		// Dial may succeed if the OS queues it; the first call must fail.
		if err := c2.Put(1, 1); err == nil {
			t.Fatal("post-shutdown connection served a request")
		}
		c2.Close()
	}
	if err := ts.st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeAfterStoreCloseReportsClosed covers the wrong-order teardown: if
// the store closes under a live server, requests answer StatusClosed
// (client.ErrStoreClosed) instead of tearing connections or panicking.
func TestServeAfterStoreCloseReportsClosed(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(7, 7); err != nil {
		t.Fatal(err)
	}
	if err := ts.st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(8, 8); !errors.Is(err, client.ErrStoreClosed) {
		t.Fatalf("Put after store close: %v, want ErrStoreClosed", err)
	}
	if _, _, err := c.Get(7); !errors.Is(err, client.ErrStoreClosed) {
		t.Fatalf("Get after store close: %v, want ErrStoreClosed", err)
	}
	// The connection survives; a fresh session on the server side would
	// also survive (NewSession is panic-free on closed stores).
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after store close: %v", err)
	}
}

// TestMalformedFrame checks the protocol-error path: a garbage frame gets a
// best-effort error response and the connection is cut.
func TestMalformedFrame(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Valid frame header (length + CRC), body with unknown opcode 0xee.
	body := append(make([]byte, 8), 0xee)
	frame := []byte{0, 0, 0, byte(len(body))}
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	frame = append(frame, body...)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	respBody, err := wire.ReadFrame(nc, wire.MaxFrame, nil)
	if err != nil {
		t.Fatalf("no error response: %v", err)
	}
	resp, err := wire.DecodeResponse(respBody)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusErr {
		t.Fatalf("status = %v, want StatusErr", resp.Status)
	}
	// The server hangs up after a framing error.
	if _, err := wire.ReadFrame(nc, wire.MaxFrame, nil); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

// TestOversizedFrameRejected: a length prefix beyond MaxFrame never
// allocates; the connection just dies.
func TestOversizedFrameRejected(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{MaxFrame: 1 << 16})
	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(nc, wire.MaxFrame, nil); err == nil {
		t.Fatal("connection survived an oversized frame header")
	}
}
