package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/store"
	"repro/wire"
)

// End-to-end coverage of OpTxn (protocol revision 4): client transaction
// builder → wire → server → store redo-log commit and back.

func TestTxnOverWire(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Seed state the transaction will overwrite and delete.
	if err := c.Put(100, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(200, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.PutKV([]byte("seed-over"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutKV([]byte("seed-del"), []byte("doomed")); err != nil {
		t.Fatal(err)
	}

	var tx client.Txn
	tx.Put(100, 11).Delete(200).Put(300, 33)
	bigVal := bytes.Repeat([]byte{0x42}, 5000)
	tx.PutKV([]byte("txn-key"), bigVal).
		PutKV([]byte("seed-over"), []byte("new")).
		DeleteKV([]byte("seed-del"))
	if tx.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tx.Len())
	}
	if err := c.CommitTxn(&tx); err != nil {
		t.Fatalf("commit: %v", err)
	}

	if v, ok, _ := c.Get(100); !ok || v != 11 {
		t.Fatalf("overwrite: v=%d ok=%v", v, ok)
	}
	if _, ok, _ := c.Get(200); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok, _ := c.Get(300); !ok || v != 33 {
		t.Fatalf("insert: v=%d ok=%v", v, ok)
	}
	if v, ok, _ := c.GetKV([]byte("txn-key")); !ok || !bytes.Equal(v, bigVal) {
		t.Fatalf("byte-key insert: ok=%v len=%d", ok, len(v))
	}
	if v, ok, _ := c.GetKV([]byte("seed-over")); !ok || string(v) != "new" {
		t.Fatalf("byte-key overwrite: %q ok=%v", v, ok)
	}
	if _, ok, _ := c.GetKV([]byte("seed-del")); ok {
		t.Fatal("byte-key delete lost")
	}

	// Empty transactions are a client-side no-op.
	var empty client.Txn
	if err := c.CommitTxn(&empty); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
	// Reset enables builder reuse.
	tx.Reset()
	if tx.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tx.Len())
	}
	tx.Put(400, 44)
	if err := c.CommitTxnContext(context.Background(), &tx); err != nil {
		t.Fatalf("context commit: %v", err)
	}
	if v, ok, _ := c.Get(400); !ok || v != 44 {
		t.Fatalf("context commit lost: v=%d ok=%v", v, ok)
	}
}

// TestTxnPipelined issues several commits back to back without waiting,
// interleaved with reads, and checks they all land in order.
func TestTxnPipelined(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 20
	calls := make([]*client.Call, n)
	txs := make([]client.Txn, n) // write-sets captured by reference until each call completes
	for i := 0; i < n; i++ {
		txs[i].Put(7, uint64(i)).Put(uint64(1000+i), uint64(i)).
			PutKV([]byte("pipelined"), []byte(fmt.Sprintf("round-%02d", i)))
		calls[i] = c.CommitTxnAsync(&txs[i])
	}
	for i, call := range calls {
		if err := call.Wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if v, ok, _ := c.Get(7); !ok || v != n-1 {
		t.Fatalf("key 7: v=%d ok=%v, want %d", v, ok, n-1)
	}
	if v, ok, _ := c.GetKV([]byte("pipelined")); !ok || string(v) != fmt.Sprintf("round-%02d", n-1) {
		t.Fatalf("pipelined byte key: %q ok=%v", v, ok)
	}
	for i := 0; i < n; i++ {
		if v, ok, _ := c.Get(uint64(1000 + i)); !ok || v != uint64(i) {
			t.Fatalf("key %d: v=%d ok=%v", 1000+i, v, ok)
		}
	}
}

// TestTxnOversizedFailsOnlyThatCall: a write-set the encoder refuses
// (over MaxTxnOps) fails locally without poisoning the connection.
func TestTxnOversizedFailsOnlyThatCall(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var over client.Txn
	for i := 0; i <= wire.MaxTxnOps; i++ {
		over.Put(uint64(i), 1)
	}
	if err := c.CommitTxn(&over); !errors.Is(err, wire.ErrTooManyKV) {
		t.Fatalf("oversized commit: %v, want ErrTooManyKV", err)
	}
	// The connection still works.
	var ok client.Txn
	ok.Put(1, 10)
	if err := c.CommitTxn(&ok); err != nil {
		t.Fatalf("commit after local failure: %v", err)
	}
	if v, found, _ := c.Get(1); !found || v != 10 {
		t.Fatalf("follow-up commit lost: v=%d ok=%v", v, found)
	}
}

// TestTxnTooLargeForRedoLog drives a server-side pre-flight refusal: the
// store's per-shard redo log is configured tiny, the write-set fits the
// wire but not the log, and the server must answer StatusErr with the
// store untouched.
func TestTxnTooLargeForRedoLog(t *testing.T) {
	ts := startServer(t, store.Options{TxnLogCap: 1 << 10}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var tx client.Txn
	tx.PutKV([]byte("fat"), bytes.Repeat([]byte{1}, 8<<10))
	err = c.CommitTxn(&tx)
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("over-capacity commit: %v, want RemoteError", err)
	}
	if _, ok, _ := c.GetKV([]byte("fat")); ok {
		t.Fatal("refused transaction left state behind")
	}
	// Small transactions still commit.
	var small client.Txn
	small.PutKV([]byte("thin"), []byte("fits"))
	if err := c.CommitTxn(&small); err != nil {
		t.Fatalf("small commit after refusal: %v", err)
	}
}

// TestTxnConcurrentCommits hammers commits from several connections —
// each connection owns disjoint keys plus one shared contended key — and
// checks the end state and server counters.
func TestTxnConcurrentCommits(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	const conns = 4
	rounds := 25
	if testing.Short() {
		rounds = 8
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(ts.addr, client.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				var tx client.Txn
				tx.Put(uint64(10000+w), uint64(r)) // private
				tx.Put(55, uint64(w*1000+r))       // contended
				tx.PutKV([]byte(fmt.Sprintf("conn-%d", w)), []byte{byte(r)})
				if err := c.CommitTxn(&tx); err != nil {
					errs <- fmt.Errorf("conn %d round %d: %w", w, r, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for i := 0; i < conns; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for w := 0; w < conns; w++ {
		if v, ok, _ := c.Get(uint64(10000 + w)); !ok || v != uint64(rounds-1) {
			t.Fatalf("conn %d private key: v=%d ok=%v", w, v, ok)
		}
		if v, ok, _ := c.GetKV([]byte(fmt.Sprintf("conn-%d", w))); !ok || v[0] != byte(rounds-1) {
			t.Fatalf("conn %d byte key: ok=%v", w, ok)
		}
	}
	// The contended key holds SOME writer's final-round value.
	v, ok, _ := c.Get(55)
	if !ok || v%1000 != uint64(rounds-1) {
		t.Fatalf("contended key: v=%d ok=%v", v, ok)
	}
	if err := ts.st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTxnPoolCommit exercises the pool front door.
func TestTxnPoolCommit(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	p, err := client.DialPool(ts.addr, 2, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 6; i++ {
		var tx client.Txn
		tx.Put(uint64(i), uint64(i)*7).PutKV([]byte{byte('a' + i)}, []byte{byte(i)})
		if err := p.CommitTxn(&tx); err != nil {
			t.Fatalf("pool commit %d: %v", i, err)
		}
	}
	for i := 0; i < 6; i++ {
		v, ok, err := p.Get(uint64(i))
		if err != nil || !ok || v != uint64(i)*7 {
			t.Fatalf("key %d: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	// Commits count as writes in the server's latency classes; give the
	// stats snapshot a beat and confirm ops flowed.
	time.Sleep(10 * time.Millisecond)
	st, err := p.Conn().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops == 0 {
		t.Fatal("server counted no ops")
	}
}
