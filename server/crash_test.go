package server

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/client"
	"repro/internal/pmem"
	"repro/store"
)

// TestKillMidBatchThenReopen is the remote-traffic version of the store's
// crash campaign: a client streams a large PutBatch over the wire, and
// while the server is applying it the test takes adversarial crash images
// of every shard (pmem.CrashSim, random per-line survivor sets), then
// hard-kills the server. store.Reopen on the images must recover every
// committed key exactly and leave every in-flight-era key fully present or
// fully absent — the paper's failure-atomicity contract, now exercised
// through the network stack.
func TestKillMidBatchThenReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st, err := store.Open(store.Options{
		Shards:    4,
		ShardSize: 32 << 20,
		Mem:       pmem.Config{TrackCrashes: true},
		// A little write latency widens the mid-batch window the
		// images are taken in.
		Latency: store.LatencyOptions{Write: 200 * time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Committed phase: synchronous puts, each acknowledged (and therefore
	// durable) before the crash log starts.
	committed := map[uint64]uint64{}
	for i := uint64(1); i <= 2000; i++ {
		k := i * 0x9e3779b97f4a7c15 // spread across shards
		if err := c.Put(k, k^0x5a5a); err != nil {
			t.Fatal(err)
		}
		committed[k] = k ^ 0x5a5a
	}
	for i := 0; i < st.NumShards(); i++ {
		st.Pool(i).StartCrashLog()
	}

	// In-flight era: one big batch goes out, and we snapshot crash images
	// while the server is chewing on it. Window keys are disjoint from
	// committed ones (different derivation).
	window := map[uint64]uint64{}
	var batch []client.KV
	for i := uint64(1); i <= 8000; i++ {
		k := i<<20 | 0xABC00
		if _, dup := committed[k]; dup {
			continue
		}
		batch = append(batch, client.KV{Key: k, Val: k ^ 0xc3c3})
		window[k] = k ^ 0xc3c3
	}
	call := c.PutBatchAsync(batch[:len(batch)/2])
	call2 := c.PutBatchAsync(batch[len(batch)/2:])

	// Wait until the batch is demonstrably mid-application on at least
	// one shard, then crash every shard at a random point of its tape —
	// regularly inside FAST's shift sequence or FAIR's split.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for i := 0; i < st.NumShards(); i++ {
			total += st.Pool(i).LogLen()
		}
		if total > 1000 || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	images := make([]*pmem.Pool, st.NumShards())
	for i := 0; i < st.NumShards(); i++ {
		pool := st.Pool(i)
		point := rng.Intn(pool.LogLen() + 1)
		images[i] = pool.CrashImage(point, pmem.CrashRandom, rng)
	}

	// Kill the server without draining; the client's outstanding calls
	// fail or succeed arbitrarily — the images above are the machine
	// state that "survived the power failure".
	srv.Close()
	<-done
	call.Wait()
	call2.Wait()
	c.Close()
	st.Close()

	re, err := store.Reopen(images, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.CheckInvariants(); err != nil {
		t.Fatalf("post-recovery invariants: %v", err)
	}
	rs := re.NewSession()
	defer rs.Close()
	for k, v := range committed {
		got, ok, err := rs.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("lost committed key %d: (%d,%v,%v)", k, got, ok, err)
		}
	}
	survived, lost := 0, 0
	for k, v := range window {
		got, ok, err := rs.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case ok && got == v:
			survived++
		case ok:
			t.Fatalf("TORN write at key %d: got %d, want %d", k, got, v)
		default:
			lost++
		}
	}
	t.Logf("window writes: %d survived, %d atomically lost", survived, lost)

	// The recovered store serves again — including over a fresh server.
	srv2 := New(re, Options{})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln2) }()
	c2, err := client.Dial(ln2.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		if err := c2.Put(i<<40|i, i); err != nil {
			t.Fatalf("post-recovery write over the wire: %v", err)
		}
	}
	c2.Close()
	srv2.Close()
	<-done2
}
