//go:build race

package server

// raceEnabled reports that the race detector is active; exact allocation
// assertions are skipped because instrumentation allocates on its own.
const raceEnabled = true
