package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/metrics"
	"repro/store"
)

// TestMetricsEndToEnd drives real traffic through a loopback server and
// checks the whole observability chain: the Prometheus rendering lints,
// the per-opcode and stage families carry the traffic, the store and pmem
// families are folded into the same registry, and the wire Stats frame
// reports per-class latency summaries.
func TestMetricsEndToEnd(t *testing.T) {
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	ts := startServer(t, store.Options{}, Options{
		SlowOpThreshold: time.Nanosecond, // everything is "slow": exercises the log path
		Logf: func(format string, args ...any) {
			logMu.Lock()
			fmt.Fprintf(&logBuf, format+"\n", args...)
			logMu.Unlock()
		},
	})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const nOps = 200
	for i := uint64(0); i < nOps; i++ {
		if err := c.Put(i, i*7); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < nOps; i++ {
		if _, _, err := c.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Scan(0, ^uint64(0), 50); err != nil {
		t.Fatal(err)
	}

	// Wire Stats latency summary: reads and writes have executed, so their
	// class quantiles must be populated and ordered (p50 <= p99).
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReadP50 == 0 || stats.WriteP50 == 0 || stats.ScanP50 == 0 {
		t.Errorf("wire stats missing class p50s: %+v", stats)
	}
	if stats.ReadP50 > stats.ReadP99 || stats.WriteP50 > stats.WriteP99 {
		t.Errorf("wire stats quantiles out of order: %+v", stats)
	}

	// Scrape the registry and lint it like CI's metricscheck does.
	reg := ts.srv.Metrics()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.LintText(buf.Bytes())
	if err != nil {
		t.Fatalf("scrape does not lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"pmkv_server_requests_total",
		"pmkv_server_request_errors_total",
		"pmkv_server_request_stage_seconds",
		"pmkv_server_request_seconds",
		"pmkv_server_read_batch_requests",
		"pmkv_server_flush_bytes",
		"pmkv_server_connections_live",
		"pmkv_store_op_seconds",
		"pmkv_store_vlog_bytes",
		"pmkv_pmem_loads_total",
	} {
		if !fams[want] {
			t.Errorf("family %s missing from scrape", want)
		}
	}
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf(`pmkv_server_requests_total{op="Get"} %d`, nOps),
		fmt.Sprintf(`pmkv_server_requests_total{op="Put"} %d`, nOps),
		`pmkv_server_requests_total{op="Scan"} 1`,
		fmt.Sprintf(`pmkv_server_request_stage_seconds_count{op="Get",stage="execute"} %d`, nOps),
		fmt.Sprintf(`pmkv_server_request_stage_seconds_count{op="Get",stage="queue"} %d`, nOps),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Store-level latencies sample 1-in-8 ops regardless of
	// SlowOpThreshold (which only forces full clocking server-side), so
	// bound the count from below rather than matching it exactly.
	if got := sampleValue(t, out, `pmkv_store_op_seconds_count{op="Get"}`); got < nOps/16 {
		t.Errorf("store Get histogram count = %v, want >= %d (1-in-8 sampled)", got, nOps/16)
	}

	// The flush stage records after the write syscall, concurrently with
	// this test's assertions; poll briefly instead of racing it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := ts.srv.met.flush[opSlot(1)].Snapshot() // Get's flush-wait hist
		if s.Count() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("flush-stage histogram never recorded")
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Slow-op log: threshold 1ns marks everything slow; the rate limiter
	// still guarantees at least the first line.
	if got := ts.srv.met.slowOps.Load(); got == 0 {
		t.Error("slow-op counter never incremented despite 1ns threshold")
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "slow op") {
		t.Errorf("slow-op log line missing from Logf output:\n%s", logged)
	}
}

// sampleValue finds the exposition line for series and parses its value.
func sampleValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("series %s: unparseable value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s missing from scrape", series)
	return 0
}

// TestMetricsHandler serves a scrape over the HTTP handler and checks the
// content type and body shape.
func TestMetricsHandler(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	rec := httptest.NewRecorder()
	ts.srv.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	if _, err := metrics.LintText(rec.Body.Bytes()); err != nil {
		t.Errorf("handler body does not lint: %v", err)
	}
}
