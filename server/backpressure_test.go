package server

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/client"
	"repro/store"
	"repro/wire"
)

// writeUntilBlocked pumps identical frames into nc until a write deadline
// fires (the server has stopped reading and every buffer in between is
// full), returning the total bytes written — including a possible partial
// trailing frame. frame must be one complete encoded request.
func writeUntilBlocked(t *testing.T, nc net.Conn, frame []byte, limit int) int {
	t.Helper()
	chunk := make([]byte, 0, 64*len(frame))
	for i := 0; i < 64; i++ {
		chunk = append(chunk, frame...)
	}
	total := 0
	for total < limit {
		nc.SetWriteDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := nc.Write(chunk)
		total += n
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return total
			}
			t.Fatalf("slow client write: %v", err)
		}
	}
	t.Fatalf("wrote %d bytes without ever blocking; backpressure never engaged", total)
	return total
}

// TestSlowClientBackpressure wedges one connection — a client that sends
// Get requests forever but never reads a response — and checks the three
// promises the pipeline makes about it: the server-side memory it can pin
// is bounded by MaxInflight (everything else backs up in the kernel's
// socket buffers and finally in the client), the shared workers keep
// serving other connections at full speed, and once the slow client drains
// its responses a graceful Shutdown still completes.
func TestSlowClientBackpressure(t *testing.T) {
	const maxInflight = 64
	ts := startServer(t, store.Options{}, Options{
		// One worker shared by both connections, inlining disabled, so
		// the wedged connection's batches land on the same worker the
		// healthy connection depends on — the harshest steering case.
		Workers:     1,
		InlineBatch: -1,
		MaxInflight: maxInflight,
	})

	slow, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	tc := slow.(*net.TCPConn)
	// Shrink the socket buffers so the test hits the wall after tens of
	// kilobytes instead of the kernel's autotuned megabytes.
	tc.SetReadBuffer(4 << 10)
	tc.SetWriteBuffer(4 << 10)

	// One Get of an absent key: 21 request bytes in, 14 response bytes
	// (NotFound) out, every time.
	frame, err := wire.AppendRequest(nil, &wire.Request{ID: 7, Op: wire.OpGet, Key: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	written := writeUntilBlocked(t, slow, frame, 512<<20)
	fullFrames := written / len(frame)
	if fullFrames < maxInflight {
		t.Fatalf("only %d frames written before blocking; cannot have filled the pipeline", fullFrames)
	}
	t.Logf("slow client wedged after %d bytes (%d frames)", written, fullFrames)

	// Bounded memory: responses served but not yet handed to the kernel
	// are capped by the credit window. Everything the server has served
	// beyond BytesOut/14 is sitting in respCh or the coalescing slab.
	st := ts.srv.Stats()
	if held := int64(st.Ops) - int64(st.BytesOut)/14; held > maxInflight+maxIngest {
		t.Fatalf("server holds %d unflushed responses, want <= %d", held, maxInflight+maxIngest)
	}

	// The wedged connection must not stall anyone else: a second
	// connection does synchronous round trips through the same single
	// worker, each bounded by a short deadline.
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := uint64(1); i <= 500; i++ {
		if err := c.Put(i, i*3); err != nil {
			t.Fatalf("healthy conn Put while peer wedged: %v", err)
		}
		if v, ok, err := c.Get(i); err != nil || !ok || v != i*3 {
			t.Fatalf("healthy conn Get(%d) = (%d,%v,%v)", i, v, ok, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("healthy conn needed %v for 1000 ops next to a wedged peer", elapsed)
	}

	// Drain the slow client: every fully-written frame gets its response
	// (frame header + the 10-byte NotFound body) once the window reopens.
	// The trailing partial frame (if any) gets nothing — the server is
	// still waiting for its remainder.
	want := fullFrames * (wire.FrameHdrSize + 10)
	got := 0
	buf := make([]byte, 64<<10)
	for got < want {
		slow.SetReadDeadline(time.Now().Add(10 * time.Second))
		n, err := slow.Read(buf)
		got += n
		if err != nil {
			t.Fatalf("draining slow client after %d/%d bytes: %v", got, want, err)
		}
	}
	if got != want {
		t.Fatalf("slow client drained %d response bytes, want %d", got, want)
	}

	// With the slow client drained, graceful shutdown completes: the
	// partial frame's reader is deadlined out, the writer has answered
	// everything issued, and the workers park.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown next to drained slow client: %v", err)
	}
	if _, err := io.ReadAll(slow); err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("slow client final read: %v", err)
	}
}

// TestShutdownAbortsWedgedClient: a client that never drains responses too
// large to park in the kernel's socket buffers wedges its writer for good,
// so graceful shutdown cannot finish on its own — the expiring context
// must abort the connection and still leave the server fully torn down.
// (With small responses a wedged client does NOT block Shutdown: its
// bounded in-flight window drains into the socket buffers and the
// connection closes cleanly — TestSlowClientBackpressure's ending.)
func TestShutdownAbortsWedgedClient(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{MaxInflight: 32, InlineBatch: -1})

	// Store one value near the frame cap; each GetV response carries it.
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 600<<10)
	for i := range big {
		big[i] = byte(i)
	}
	if err := c.PutBytes(77, big); err != nil {
		t.Fatal(err)
	}
	c.Close()

	slow, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	tc := slow.(*net.TCPConn)
	tc.SetReadBuffer(4 << 10)
	tc.SetWriteBuffer(4 << 10)
	var out []byte
	for i := uint64(1); i <= 200; i++ {
		out, err = wire.AppendRequest(out, &wire.Request{ID: i, Op: wire.OpGetV, Key: 77})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := slow.Write(out); err != nil {
		t.Fatal(err)
	}
	// Wait until the in-flight window is full: 32 pending 600 KiB
	// responses cannot fit any socket buffer, so the connection's writer
	// is now truly stuck in a Write.
	deadline := time.Now().Add(10 * time.Second)
	for ts.srv.Stats().Ops < 32 {
		if time.Now().After(deadline) {
			t.Fatalf("server served only %d ops; wedge never formed", ts.srv.Stats().Ops)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

// TestResponseIDsSurviveWedge sanity-checks the drain math above: a short
// wedge round-trips intact frames whose ids echo back exactly.
func TestResponseIDsSurviveWedge(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{MaxInflight: 8, InlineBatch: -1})
	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	const n = 100
	var out []byte
	for i := uint64(1); i <= n; i++ {
		out, err = wire.AppendRequest(out, &wire.Request{ID: i, Op: wire.OpGet, Key: i})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	r := io.Reader(nc)
	for i := 0; i < n; i++ {
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		body, err := wire.ReadFrame(r, wire.MaxFrame, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusNotFound {
			t.Fatalf("id %d: status %v, want NotFound", resp.ID, resp.Status)
		}
		if seen[resp.ID] || resp.ID == 0 || resp.ID > n {
			t.Fatalf("bad or duplicate response id %d", resp.ID)
		}
		seen[resp.ID] = true
	}
}
