package server

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/client"
	"repro/store"
	"repro/wire"
)

// End-to-end coverage of the varlen-value ops: client → wire → server →
// store → vlog and back.

func TestVarlenRoundTrip(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(1))
	want := map[uint64][]byte{}
	for i := 0; i < 300; i++ {
		k := rng.Uint64()%100000 + 1
		v := make([]byte, rng.Intn(2000))
		rng.Read(v)
		if err := c.PutBytes(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for k, v := range want {
		got, ok, err := c.GetBytes(k)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %d: ok=%v err=%v (%d bytes, want %d)", k, ok, err, len(got), len(v))
		}
	}
	// Miss, empty value, delete.
	if _, ok, err := c.GetBytes(1 << 60); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	if err := c.PutBytes(5555, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := c.GetBytes(5555); err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty value: %q ok=%v err=%v", got, ok, err)
	}
	for k := range want {
		if ok, err := c.Delete(k); !ok || err != nil {
			t.Fatalf("delete %d: ok=%v err=%v", k, ok, err)
		}
		if _, ok, _ := c.GetBytes(k); ok {
			t.Fatalf("key %d survives delete", k)
		}
		break
	}
}

func TestVarlenPipelined(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{Workers: 4})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	val := func(i uint64) []byte {
		return bytes.Repeat([]byte{byte(i)}, int(i%97)+1)
	}
	calls := make([]*client.Call, 0, n)
	for i := uint64(1); i <= n; i++ {
		calls = append(calls, c.PutBytesAsync(i, val(i)))
	}
	for _, call := range calls {
		if err := call.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	gets := make([]*client.Call, 0, n)
	for i := uint64(1); i <= n; i++ {
		gets = append(gets, c.GetBytesAsync(i))
	}
	for i, call := range gets {
		if err := call.Wait(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(call.Resp.VVal, val(uint64(i)+1)) {
			t.Fatalf("pipelined GetV %d mismatch", i+1)
		}
	}
}

func TestVarlenScanPagination(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 400
	for i := uint64(1); i <= n; i++ {
		if err := c.PutBytes(i, bytes.Repeat([]byte{byte(i)}, int(i%50)+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Page through everything 64 pairs at a time.
	var got int
	lo := uint64(0)
	for {
		pairs, err := c.ScanBytes(lo, n, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			break
		}
		for i, p := range pairs {
			want := bytes.Repeat([]byte{byte(p.Key)}, int(p.Key%50)+1)
			if !bytes.Equal(p.Val, want) {
				t.Fatalf("scan value mismatch at key %d", p.Key)
			}
			if i > 0 && pairs[i-1].Key >= p.Key {
				t.Fatalf("scan out of order at %d", p.Key)
			}
		}
		got += len(pairs)
		lo = pairs[len(pairs)-1].Key + 1
	}
	if got != n {
		t.Fatalf("paged scan visited %d keys, want %d", got, n)
	}
}

// TestVarlenScanByteBudget stores values big enough that the response
// byte budget, not the pair cap, ends each page; paging must still visit
// every key exactly once.
func TestVarlenScanByteBudget(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	big := make([]byte, 64<<10) // 40 x 64 KiB >> one frame
	for i := range big {
		big[i] = byte(i * 7)
	}
	for i := uint64(1); i <= n; i++ {
		if err := c.PutBytes(i, big); err != nil {
			t.Fatal(err)
		}
	}
	seen, pages := 0, 0
	lo := uint64(0)
	for {
		pairs, err := c.ScanBytes(lo, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			break
		}
		pages++
		for _, p := range pairs {
			if !bytes.Equal(p.Val, big) {
				t.Fatalf("byte-budget scan corrupted value at key %d", p.Key)
			}
		}
		seen += len(pairs)
		lo = pairs[len(pairs)-1].Key + 1
	}
	if seen != n {
		t.Fatalf("budgeted scan visited %d keys, want %d", seen, n)
	}
	if pages < 2 {
		t.Fatalf("byte budget never split the pages (%d pages for %d x %d KiB)", pages, n, len(big)>>10)
	}
}

func TestVarlenMixedAPIRejected(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put(42, 12345); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.GetBytes(42)
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("GetV of fixed-width key: err = %v, want RemoteError", err)
	}
	// The fixed-width API still reads its own key.
	if v, ok, err := c.Get(42); err != nil || !ok || v != 12345 {
		t.Fatalf("fixed Get after varlen attempt: %d %v %v", v, ok, err)
	}
}

// TestValueCapsAligned pins store.MaxValue to wire.MaxValue: the store
// must never accept a value the protocol cannot serve.
func TestValueCapsAligned(t *testing.T) {
	if store.MaxValue != wire.MaxValue {
		t.Fatalf("store.MaxValue %d != wire.MaxValue %d: embedded stores could hold unservable values",
			store.MaxValue, wire.MaxValue)
	}
}

func TestVarlenMaxValueOverWire(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The wire cap is enforced client-side at encode time.
	if err := c.PutBytes(1, make([]byte, wire.MaxValue+1)); err == nil {
		t.Fatal("oversized PutBytes succeeded")
	}
	// The largest legal value round-trips.
	maxVal := bytes.Repeat([]byte{0x5a}, wire.MaxValue)
	if err := c.PutBytes(2, maxVal); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.GetBytes(2)
	if err != nil || !ok || !bytes.Equal(got, maxVal) {
		t.Fatalf("max-size value: ok=%v err=%v len=%d", ok, err, len(got))
	}
}
